package sweepd

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"crn"
	"crn/internal/sweepfile"
)

// testSpec is a small two-variant sweep (8 runs) that exercises the
// same path/star-with-preset shapes as cmd/crnsweep's committed spec.
func testSpec() *sweepfile.Spec {
	return &sweepfile.Spec{
		Primitive: "cseek",
		Seeds:     4,
		BaseSeed:  42,
		Variants: []sweepfile.Variant{
			{Name: "quiet-path", Topology: "path", N: 6, Channels: 3, K: 2, Seed: 1},
			{Name: "busy-star", Topology: "star", N: 8, Channels: 4, K: 2, Seed: 2, Preset: "urban-busy"},
		},
	}
}

// directBytes is the reference: the exact bytes an in-process
// crn.Sweep of the spec produces under the shared encoder.
func directBytes(t *testing.T, sf *sweepfile.Spec) []byte {
	t.Helper()
	spec, err := sweepfile.BuildSweepSpec(sf, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crn.Sweep(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := sweepfile.MarshalPretty(res)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func quietLog() *log.Logger { return log.New(io.Discard, "", 0) }

// startServer boots a Server on spool behind an httptest listener.
func startServer(t *testing.T, spool string, ttl time.Duration) (*Server, *httptest.Server, *Client) {
	t.Helper()
	srv, err := New(Config{Spool: spool, LeaseTTL: ttl, Log: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts, NewClient(ts.URL)
}

// runWorker runs a Worker until it returns, reporting on done.
func runWorker(ctx context.Context, w *Worker) chan error {
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	return done
}

// TestServiceByteIdentityTwoWorkers is the acceptance criterion: a
// job submitted over the HTTP API and executed by two separate
// workers returns bytes identical to in-process crn.Sweep.
func TestServiceByteIdentityTwoWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	_, _, c := startServer(t, t.TempDir(), time.Minute)

	id, err := c.Submit(ctx, testSpec(), 4)
	if err != nil {
		t.Fatal(err)
	}

	// MaxShards: 2 forces both workers to participate: neither can
	// finish the 4-shard job alone.
	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2"} {
		wk := &Worker{Client: c, Name: name, Workers: 2, Poll: 10 * time.Millisecond, MaxShards: 2, Log: quietLog()}
		wg.Add(1)
		go func() { defer wg.Done(); _ = wk.Run(ctx) }()
	}
	wg.Wait()

	st, err := c.Wait(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 4 || st.State != JobDone {
		t.Fatalf("job not done after both workers exited: %+v", st)
	}
	for _, sh := range st.Shards {
		if sh.Attempts != 1 {
			t.Errorf("shard %d took %d attempts, want 1", sh.Shard, sh.Attempts)
		}
	}

	_, got, err := c.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if want := directBytes(t, testSpec()); string(got) != string(want) {
		t.Errorf("service result diverged from in-process crn.Sweep\nservice: %d bytes\ndirect:  %d bytes", len(got), len(want))
	}
}

// TestLeaseExpiryRedispatch kills a worker mid-shard (it acquires a
// lease and exits without completing or heartbeating) and checks that
// the daemon re-dispatches the shard after the lease TTL — and that
// the straggler leaves no trace in the merged bytes.
func TestLeaseExpiryRedispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	// The lease TTL bounds how long the dead worker's shard stays
	// stuck; generous enough that a live worker's heartbeats (TTL/3)
	// never lapse even under the race detector's slowdown.
	_, _, c := startServer(t, t.TempDir(), 2*time.Second)

	id, err := c.Submit(ctx, testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}

	// The straggler takes exactly one lease and dies.
	straggler := &Worker{Client: c, Name: "straggler", Poll: 5 * time.Millisecond, AbandonAfter: 1, Log: quietLog()}
	if err := <-runWorker(ctx, straggler); err != nil {
		t.Fatal(err)
	}

	st, err := c.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if n := countState(st, ShardLeased); n != 1 {
		t.Fatalf("expected 1 leased shard after the straggler died, got %+v", st.Shards)
	}

	wctx, stopWorker := context.WithCancel(ctx)
	healthy := &Worker{Client: c, Name: "healthy", Workers: 2, Poll: 20 * time.Millisecond, Log: quietLog()}
	done := runWorker(wctx, healthy)

	waitCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	st, err = c.Wait(waitCtx, id, 20*time.Millisecond)
	stopWorker()
	<-done
	if err != nil {
		t.Fatal(err)
	}

	redispatched := 0
	for _, sh := range st.Shards {
		if sh.Attempts > 1 {
			redispatched++
		}
	}
	if redispatched != 1 {
		t.Errorf("expected exactly the straggler's shard re-dispatched, got shards %+v", st.Shards)
	}

	_, got, err := c.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if want := directBytes(t, testSpec()); string(got) != string(want) {
		t.Error("result after straggler re-dispatch diverged from in-process crn.Sweep")
	}
}

func countState(st *JobStatus, state string) int {
	n := 0
	for _, sh := range st.Shards {
		if sh.State == state {
			n++
		}
	}
	return n
}

// TestDaemonRestartResume: a daemon restarted mid-job on the same
// spool resumes the job without re-running shards that already
// produced valid artifacts.
func TestDaemonRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	spool := t.TempDir()

	srv1, ts1, c1 := startServer(t, spool, time.Minute)
	id, err := c1.Submit(ctx, testSpec(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Complete exactly 2 of the 4 shards, then kill the daemon.
	wk := &Worker{Client: c1, Name: "w1", Workers: 2, Poll: 10 * time.Millisecond, MaxShards: 2, Log: quietLog()}
	if err := <-runWorker(ctx, wk); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	srv1.Close()

	_, _, c2 := startServer(t, spool, time.Minute)
	st, err := c2.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 2 {
		t.Fatalf("restarted daemon recovered %d done shards, want 2: %+v", st.Done, st.Shards)
	}
	if st.State != JobRunning {
		t.Fatalf("restarted daemon reports job %s, want running", st.State)
	}

	// MaxShards: 2 — if recovery had re-queued the finished shards,
	// two more completions could not finish the job.
	wk2 := &Worker{Client: c2, Name: "w2", Workers: 2, Poll: 10 * time.Millisecond, MaxShards: 2, Log: quietLog()}
	if err := <-runWorker(ctx, wk2); err != nil {
		t.Fatal(err)
	}
	st, err = c2.Wait(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range st.Shards {
		if sh.Attempts > 1 {
			t.Errorf("shard %d re-ran across the restart (attempts %d)", sh.Shard, sh.Attempts)
		}
	}

	_, got, err := c2.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if want := directBytes(t, testSpec()); string(got) != string(want) {
		t.Error("result after daemon restart diverged from in-process crn.Sweep")
	}
}

// TestRecoveryMerges: a daemon that died after the last artifact but
// before the merge finishes the merge on restart.
func TestRecoveryMerges(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	spool := t.TempDir()

	srv1, ts1, c1 := startServer(t, spool, time.Minute)
	id, err := c1.Submit(ctx, testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	wk := &Worker{Client: c1, Name: "w", Workers: 2, Poll: 10 * time.Millisecond, MaxShards: 2, Log: quietLog()}
	if err := <-runWorker(ctx, wk); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Wait(ctx, id, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	srv1.Close()

	// Simulate the crash window: artifacts intact, merge lost.
	if err := os.Remove(filepath.Join(spool, "jobs", id, "merged.json")); err != nil {
		t.Fatal(err)
	}

	_, _, c2 := startServer(t, spool, time.Minute)
	st, err := c2.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone {
		t.Fatalf("recovery did not merge the completed job: state %s", st.State)
	}
	_, got, err := c2.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if want := directBytes(t, testSpec()); string(got) != string(want) {
		t.Error("recovery-merged result diverged from in-process crn.Sweep")
	}
}

// TestArtifactValidation: uploads that fail the planHash / shard /
// run-count gauntlet are rejected and the shard stays leased for the
// honest retry.
func TestArtifactValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	_, _, c := startServer(t, t.TempDir(), time.Minute)

	id, err := c.Submit(ctx, testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	grant, err := c.Acquire(ctx, "tester")
	if err != nil || grant == nil {
		t.Fatalf("acquire: %v %v", grant, err)
	}

	spec, err := sweepfile.BuildSweepSpec(grant.Manifest.Spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crn.RunShard(ctx, spec, grant.Manifest.Plan, grant.Shard)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong plan hash: artifact from some other planned sweep.
	err = c.Complete(ctx, grant.Lease, &sweepfile.Artifact{PlanHash: "sha256:feedface", Result: res})
	if err == nil || !strings.Contains(err.Error(), "plan hash") {
		t.Errorf("foreign plan hash accepted (err: %v)", err)
	}
	// Wrong shard index.
	wrong := *res
	wrong.Shard = 1 - grant.Shard
	if err := c.Complete(ctx, grant.Lease, &sweepfile.Artifact{PlanHash: grant.Manifest.PlanHash, Result: &wrong}); err == nil {
		t.Error("wrong-shard artifact accepted")
	}
	// Truncated runs.
	short := *res
	short.Runs = short.Runs[:len(short.Runs)-1]
	if err := c.Complete(ctx, grant.Lease, &sweepfile.Artifact{PlanHash: grant.Manifest.PlanHash, Result: &short}); err == nil {
		t.Error("truncated artifact accepted")
	}
	// Unknown lease.
	if err := c.Complete(ctx, "l0-bogus-0", &sweepfile.Artifact{PlanHash: grant.Manifest.PlanHash, Result: res}); err == nil {
		t.Error("unknown lease accepted")
	}

	// The honest upload still lands, and the shard is done.
	if err := c.Complete(ctx, grant.Lease, &sweepfile.Artifact{PlanHash: grant.Manifest.PlanHash, Result: res}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards[grant.Shard].State != ShardDone {
		t.Errorf("shard %d not done after valid upload: %+v", grant.Shard, st.Shards)
	}
}

// TestSubmitValidation: malformed submissions are rejected with
// errors, not queued.
func TestSubmitValidation(t *testing.T) {
	ctx := context.Background()
	_, _, c := startServer(t, t.TempDir(), time.Minute)

	if _, err := c.Submit(ctx, &sweepfile.Spec{Primitive: "quantum"}, 1); err == nil {
		t.Error("unknown primitive accepted")
	}
	if _, err := c.Submit(ctx, nil, 1); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := c.Submit(ctx, testSpec(), -3); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := c.Status(ctx, "jdeadbeef"); err == nil {
		t.Error("unknown job id accepted")
	}
	if _, _, err := c.Result(ctx, "jdeadbeef"); err == nil {
		t.Error("result of unknown job accepted")
	}
}

// TestResultUnavailableWhileRunning: the result endpoint refuses
// until the job is done.
func TestResultUnavailableWhileRunning(t *testing.T) {
	ctx := context.Background()
	_, _, c := startServer(t, t.TempDir(), time.Minute)
	id, err := c.Submit(ctx, testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Result(ctx, id); err == nil || !strings.Contains(err.Error(), "queued") {
		t.Errorf("result of a queued job served: %v", err)
	}
}

// TestQueueLeaseLifecycle drives the queue state machine directly
// with an injected clock: expiry re-queues, heartbeats extend, and
// exhausted attempts fail the job.
func TestQueueLeaseLifecycle(t *testing.T) {
	sf := testSpec()
	m, err := sweepfile.NewManifest(sf, 2)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	q := newQueue(time.Minute, 2)
	q.now = func() time.Time { return now }
	q.add("j1", t.TempDir(), m, now, nil, false, "")

	g1 := q.acquire("w1")
	if g1 == nil || g1.Shard != 0 {
		t.Fatalf("first acquire: %+v", g1)
	}
	g2 := q.acquire("w2")
	if g2 == nil || g2.Shard != 1 {
		t.Fatalf("second acquire: %+v", g2)
	}
	if g := q.acquire("w3"); g != nil {
		t.Fatalf("third acquire should starve, got %+v", g)
	}

	// w1 heartbeats at +50s; w2 goes silent.
	now = now.Add(50 * time.Second)
	if err := q.heartbeat(g1.Lease); err != nil {
		t.Fatal(err)
	}
	// +70s: w2's lease (deadline +60s) expired, w1's (extended to
	// +110s) lives.
	now = now.Add(20 * time.Second)
	g3 := q.acquire("w3")
	if g3 == nil || g3.Shard != 1 {
		t.Fatalf("expired shard not re-leased: %+v", g3)
	}
	if err := q.heartbeat(g2.Lease); err == nil {
		t.Error("heartbeat on an expired lease accepted")
	}
	if _, _, err := q.complete(g2.Lease); err == nil {
		t.Error("complete on an expired lease accepted")
	}

	// Complete both live leases; the second one is the job's last.
	if _, last, err := q.complete(g1.Lease); err != nil || last {
		t.Fatalf("complete g1: last=%v err=%v", last, err)
	}
	j, last, err := q.complete(g3.Lease)
	if err != nil || !last {
		t.Fatalf("complete g3: last=%v err=%v", last, err)
	}
	q.markMerged(j, "")
	st, _ := q.status("j1")
	if st.State != JobDone {
		t.Errorf("job state %s after merge, want done", st.State)
	}
	if st.Shards[1].Attempts != 2 {
		t.Errorf("re-leased shard attempts %d, want 2", st.Shards[1].Attempts)
	}
}

// TestQueueMaxAttemptsFailsJob: a shard that keeps burning leases
// takes its job down with a diagnosable error.
func TestQueueMaxAttemptsFailsJob(t *testing.T) {
	sf := testSpec()
	m, err := sweepfile.NewManifest(sf, 1)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	q := newQueue(time.Minute, 2)
	q.now = func() time.Time { return now }
	q.add("j1", t.TempDir(), m, now, nil, false, "")

	g := q.acquire("w1")
	if err := q.fail(g.Lease, "boom"); err != nil {
		t.Fatal(err)
	}
	g = q.acquire("w1")
	if g == nil {
		t.Fatal("second lease refused before max attempts")
	}
	if err := q.fail(g.Lease, "boom again"); err != nil {
		t.Fatal(err)
	}
	st, _ := q.status("j1")
	if st.State != JobFailed {
		t.Fatalf("job state %s after exhausting attempts, want failed", st.State)
	}
	if !strings.Contains(st.Error, "boom again") {
		t.Errorf("job error %q does not carry the last failure", st.Error)
	}
	if g := q.acquire("w1"); g != nil {
		t.Errorf("failed job still dispatching: %+v", g)
	}
}

// TestSpoolLayoutIsCrnsweepCompatible: each job directory is a valid
// crnsweep working dir — the offline merge of the spooled files
// reproduces the service's merged bytes.
func TestSpoolLayoutIsCrnsweepCompatible(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	ctx := context.Background()
	spool := t.TempDir()
	_, _, c := startServer(t, spool, time.Minute)
	id, err := c.Submit(ctx, testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	wk := &Worker{Client: c, Name: "w", Workers: 2, Poll: 10 * time.Millisecond, MaxShards: 2, Log: quietLog()}
	if err := <-runWorker(ctx, wk); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, id, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(spool, "jobs", id)
	m, _, err := sweepfile.LoadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*crn.ShardResult, len(m.Plan.Shards))
	for k := range results {
		if results[k], err = sweepfile.LoadArtifact(m, dir, k); err != nil {
			t.Fatalf("spooled artifact %d invalid under offline validation: %v", k, err)
		}
	}
	merged, err := crn.MergeShards(m.Plan, results...)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := sweepfile.MarshalPretty(merged)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := c.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if string(offline) != string(got) {
		t.Error("offline merge of the spool diverged from the service result")
	}
	var res crn.SweepResult
	if err := json.Unmarshal(got, &res); err != nil {
		t.Fatalf("service result is not a SweepResult: %v", err)
	}
}
