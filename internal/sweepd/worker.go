package sweepd

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"time"

	"crn"
	"crn/internal/sweepfile"
)

// Worker is the pull side of the service: it polls the daemon for
// leases, executes each leased shard with crn.RunShard (the same call
// `crnsweep run -shard k` makes), heartbeats while it works, and
// uploads the artifact. Run as many workers as you have machines —
// the daemon's validation and the facade's position-derived seeds
// make the fleet's output independent of who ran what.
type Worker struct {
	// Client connects to the daemon (required).
	Client *Client
	// Name identifies the worker in leases and logs (required).
	Name string
	// Workers is the per-shard simulation pool size (0: GOMAXPROCS).
	// It never affects output bytes.
	Workers int
	// Poll is the idle re-poll base interval (default 200ms). Each
	// empty or failed acquire backs off exponentially with jitter from
	// this base up to PollMax; a successful acquire resets to Poll.
	Poll time.Duration
	// PollMax caps the acquire backoff (default 20×Poll). A worker
	// fleet facing a down daemon converges to jittered polls at this
	// cap instead of hammering it in lockstep the moment it returns.
	PollMax time.Duration
	// MaxShards, when > 0, exits the worker after completing that many
	// shards (useful in tests and drain scripts). 0 runs until ctx is
	// cancelled.
	MaxShards int
	// AbandonAfter, when > 0, makes the worker exit immediately after
	// acquiring its Nth lease without completing, failing or
	// heartbeating it — a deterministic straggler for re-dispatch
	// tests and the CI kill-a-worker variant.
	AbandonAfter int
	// Log receives per-shard progress (default: log.Default()).
	Log *log.Logger
}

// Run executes the worker loop until ctx is cancelled (returning nil)
// or MaxShards/AbandonAfter triggers an exit. Transient daemon errors
// are retried at the poll interval rather than killing the worker.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil || w.Name == "" {
		return fmt.Errorf("sweepd: worker needs a Client and a Name")
	}
	logf := log.Default().Printf
	if w.Log != nil {
		logf = w.Log.Printf
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	pollMax := w.PollMax
	if pollMax <= 0 {
		pollMax = 20 * poll
	}
	// Seed the jitter from the worker name: deterministic per worker,
	// decorrelated across the fleet.
	h := fnv.New64a()
	io.WriteString(h, w.Name)
	idle := newBackoff(poll, pollMax, h.Sum64())
	leased, completed := 0, 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		grant, err := w.Client.Acquire(ctx, w.Name)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			logf("worker %s: acquire: %v (retrying)", w.Name, err)
		}
		if grant == nil {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(idle.next()):
			}
			continue
		}
		idle.reset()
		leased++
		if w.AbandonAfter > 0 && leased >= w.AbandonAfter {
			logf("worker %s: abandoning lease %s (shard %d of job %s) and exiting", w.Name, grant.Lease, grant.Shard, grant.Job)
			return nil
		}
		if err := w.executeLease(ctx, grant, logf); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			logf("worker %s: lease %s: %v", w.Name, grant.Lease, err)
			continue
		}
		completed++
		if w.MaxShards > 0 && completed >= w.MaxShards {
			logf("worker %s: completed %d shards, exiting", w.Name, completed)
			return nil
		}
	}
}

// executeLease runs one leased shard end to end. The shard's context
// is cancelled as soon as a heartbeat is rejected (lease lost to
// expiry), so a worker that was presumed dead stops burning CPU on
// work the daemon has already re-dispatched.
func (w *Worker) executeLease(ctx context.Context, grant *LeaseGrant, logf func(string, ...any)) error {
	spec, err := sweepfile.BuildSweepSpec(grant.Manifest.Spec, w.Workers)
	if err != nil {
		// The manifest is unexecutable; tell the daemon rather than
		// silently re-polling the same poisoned shard.
		if ferr := w.Client.Fail(ctx, grant.Lease, err.Error()); ferr != nil {
			return fmt.Errorf("%v (and failing the lease: %v)", err, ferr)
		}
		return err
	}

	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := grant.TTL() / 3
		if interval <= 0 {
			interval = time.Second
		}
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-time.After(interval):
			}
			if err := w.Client.Heartbeat(shardCtx, grant.Lease); err != nil {
				if shardCtx.Err() == nil {
					logf("worker %s: lease %s lost: %v", w.Name, grant.Lease, err)
					cancel()
				}
				return
			}
		}
	}()

	logf("worker %s: running shard %d of job %s (lease %s)", w.Name, grant.Shard, grant.Job, grant.Lease)
	res, err := crn.RunShard(shardCtx, spec, grant.Manifest.Plan, grant.Shard)
	cancel() // stop heartbeating before the upload settles the lease
	<-hbDone
	if err != nil {
		if ctx.Err() == nil && shardCtx.Err() == nil {
			if ferr := w.Client.Fail(ctx, grant.Lease, err.Error()); ferr != nil {
				return fmt.Errorf("%v (and failing the lease: %v)", err, ferr)
			}
		}
		return err
	}
	artifact, err := sweepfile.NewArtifact(grant.Manifest.PlanHash, res)
	if err != nil {
		return fmt.Errorf("checksumming shard %d: %w", grant.Shard, err)
	}
	if err := w.Client.Complete(ctx, grant.Lease, artifact); err != nil {
		if IsConflict(err) {
			// Expiry won the race: the daemon re-dispatched the shard
			// while we were uploading. Not a worker failure — the
			// deterministic bytes will come from whoever holds the new
			// lease.
			return fmt.Errorf("uploading shard %d: lease lost to expiry, shard re-dispatched: %w", grant.Shard, err)
		}
		return fmt.Errorf("uploading shard %d: %w", grant.Shard, err)
	}
	logf("worker %s: shard %d of job %s complete (%d runs)", w.Name, grant.Shard, grant.Job, len(res.Runs))
	return nil
}
