package sweepd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crn"
	"crn/internal/sweepfile"
)

// fastClient returns a client with tight timeouts and retries for
// hardening tests, plus an instant sleeper so retry tests don't wait.
func fastClient(base string, opts ...ClientOption) *Client {
	c := NewClient(base, opts...)
	c.sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	return c
}

// TestClientRequestTimeoutDistinct: a stalled daemon must surface as
// context.DeadlineExceeded — distinguishable from transport errors —
// without the caller's own context being touched.
func TestClientRequestTimeoutDistinct(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer ts.Close()
	defer close(release)

	c := fastClient(ts.URL, WithRequestTimeout(30*time.Millisecond), WithRetries(0, time.Millisecond))
	_, err := c.Status(context.Background(), "j1")
	if err == nil {
		t.Fatal("stalled daemon produced no error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded in chain, got %v", err)
	}
	if !strings.Contains(err.Error(), "request deadline") {
		t.Fatalf("timeout error should name the request deadline: %v", err)
	}

	// A plain refused connection must NOT read as a deadline.
	c2 := fastClient("http://127.0.0.1:1", WithRequestTimeout(time.Second), WithRetries(0, time.Millisecond))
	_, err = c2.Status(context.Background(), "j1")
	if err == nil || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("refused connection misreported as deadline: %v", err)
	}
}

// TestClientRetriesIdempotent: 5xx on an idempotent verb retries to
// success; the same storm on Submit does not (a replayed submit could
// double-queue), while 429 retries every verb.
func TestClientRetriesIdempotent(t *testing.T) {
	var gets, submits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			if gets.Add(1) <= 2 {
				http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
				return
			}
			fmt.Fprint(w, `{"id":"j1","state":"queued","planHash":"x","created":"2026-01-01T00:00:00Z","shards":[],"done":0,"total":1,"runs":1,"error":""}`)
			return
		}
		submits.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := fastClient(ts.URL, WithRetries(4, time.Millisecond))
	if _, err := c.Status(context.Background(), "j1"); err != nil {
		t.Fatalf("idempotent GET did not retry through the 5xx storm: %v", err)
	}
	if n := gets.Load(); n != 3 {
		t.Fatalf("GET attempted %d times, want 3", n)
	}

	if _, err := c.Submit(context.Background(), testSpec(), 1); err == nil {
		t.Fatal("Submit retried a 500 — a replayed submit can double-queue")
	}
	if n := submits.Load(); n != 1 {
		t.Fatalf("Submit attempted %d times, want 1", n)
	}
}

// TestClientRetries429Always: 429 means "not processed", so even
// Submit retries it, honoring Retry-After.
func TestClientRetries429Always(t *testing.T) {
	var submits atomic.Int64
	var sawRetryAfter atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if submits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, `{"id":"j9"}`)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, WithRetries(2, time.Millisecond))
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if d == time.Second {
			sawRetryAfter.Store(true)
		}
		return nil
	}
	id, err := c.Submit(context.Background(), testSpec(), 1)
	if err != nil || id != "j9" {
		t.Fatalf("Submit through 429: id=%q err=%v", id, err)
	}
	if n := submits.Load(); n != 2 {
		t.Fatalf("Submit attempted %d times, want 2", n)
	}
	if !sawRetryAfter.Load() {
		t.Fatal("client did not honor Retry-After")
	}
}

// TestDuplicateCompleteIsNoOp: re-uploading the artifact for a lease
// that already completed must ack again (204), not 409 — that is what
// makes a lost Complete ack safe to retry.
func TestDuplicateCompleteIsNoOp(t *testing.T) {
	m, err := sweepfile.NewManifest(testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	spool := t.TempDir()
	srv, ts, c := startServer(t, spool, time.Minute)
	defer ts.Close()
	defer srv.Close()

	ctx := context.Background()
	id, err := c.Submit(ctx, testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	grant, err := c.Acquire(ctx, "w1")
	if err != nil || grant == nil {
		t.Fatalf("acquire: %v %v", grant, err)
	}
	spec, err := sweepfile.BuildSweepSpec(testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crn.RunShard(ctx, spec, m.Plan, grant.Shard)
	if err != nil {
		t.Fatal(err)
	}
	artifact, err := sweepfile.NewArtifact(m.PlanHash, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(ctx, grant.Lease, artifact); err != nil {
		t.Fatalf("first complete: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Complete(ctx, grant.Lease, artifact); err != nil {
			t.Fatalf("duplicate complete #%d: %v", i+1, err)
		}
	}
	st, err := c.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 {
		t.Fatalf("duplicates changed state: %d shards done, want 1", st.Done)
	}
	if st.Shards[grant.Shard].Attempts != 1 {
		t.Fatalf("duplicates burned attempts: %d, want 1", st.Shards[grant.Shard].Attempts)
	}
}

// TestOverloadShedding: beyond MaxInflight the daemon sheds with 429
// + Retry-After instead of queueing; healthz stays exempt.
func TestOverloadShedding(t *testing.T) {
	srv, err := New(Config{Spool: t.TempDir(), MaxInflight: 1, Log: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	release := make(chan struct{})
	started := make(chan struct{})
	blocking := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/block" {
			close(started)
			<-release
			return
		}
		srv.Handler().ServeHTTP(w, r)
	})
	// Wrap the blocking route through the same shedder.
	h := srv.shed(blocking)
	ts := httptest.NewServer(h)
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/api/v1/block")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	resp, err := http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated daemon replied %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 reply missing Retry-After")
	}

	resp, err = http.Get(ts.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz shed with %d — a shedding daemon must still report alive", resp.StatusCode)
	}
	close(release)
	wg.Wait()
}

// TestBackoffJitteredExponential: delays grow toward the cap, stay in
// the jitter envelope [cur/2, 3·cur/2), and reset() snaps back.
func TestBackoffJitteredExponential(t *testing.T) {
	b := newBackoff(100*time.Millisecond, time.Second, 7)
	cur := 100 * time.Millisecond
	for i := 0; i < 10; i++ {
		d := b.next()
		if d < cur/2 || d >= cur+cur/2 {
			t.Fatalf("step %d: delay %v outside [%v, %v)", i, d, cur/2, cur+cur/2)
		}
		if cur *= 2; cur > time.Second {
			cur = time.Second
		}
	}
	b.reset()
	if d := b.next(); d >= 150*time.Millisecond {
		t.Fatalf("after reset, delay %v should be back at base scale", d)
	}

	// Two workers with different names must not poll in lockstep.
	b1 := newBackoff(100*time.Millisecond, time.Second, 1)
	b2 := newBackoff(100*time.Millisecond, time.Second, 2)
	same := true
	for i := 0; i < 8; i++ {
		if b1.next() != b2.next() {
			same = false
		}
	}
	if same {
		t.Fatal("differently-seeded backoffs produced identical jitter")
	}
}

// tornFS tears the Nth WriteFileAtomic (truncated bytes land, success
// reported) — the lying-disk case only read-back verification catches.
type tornFS struct {
	sweepfile.FS
	writes atomic.Int64
	tearAt int64
}

func (f *tornFS) WriteFileAtomic(path string, data []byte) error {
	if f.writes.Add(1) == f.tearAt {
		return f.FS.WriteFileAtomic(path, data[:len(data)/2])
	}
	return f.FS.WriteFileAtomic(path, data)
}

// TestTornWriteNeverAcked: a torn artifact write must fail the
// Complete (read-back mismatch) so the worker's retry re-uploads; the
// shard is never acked on top of bad bytes.
func TestTornWriteNeverAcked(t *testing.T) {
	m, err := sweepfile.NewManifest(testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// job.json and manifest.json are writes 1 and 2; the first
	// artifact is write 3.
	ffs := &tornFS{FS: sweepfile.OS, tearAt: 3}
	srv, err := New(Config{Spool: t.TempDir(), LeaseTTL: time.Minute, FS: ffs, Log: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := fastClient(ts.URL, WithRetries(2, time.Millisecond))

	ctx := context.Background()
	id, err := c.Submit(ctx, testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	grant, err := c.Acquire(ctx, "w1")
	if err != nil || grant == nil {
		t.Fatalf("acquire: %v %v", grant, err)
	}
	spec, err := sweepfile.BuildSweepSpec(testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crn.RunShard(ctx, spec, m.Plan, grant.Shard)
	if err != nil {
		t.Fatal(err)
	}
	artifact, err := sweepfile.NewArtifact(m.PlanHash, res)
	if err != nil {
		t.Fatal(err)
	}
	// Complete is idempotent: the client retries through the injected
	// torn write (500 read-back mismatch) and the second attempt acks.
	if err := c.Complete(ctx, grant.Lease, artifact); err != nil {
		t.Fatalf("complete did not survive one torn write: %v", err)
	}
	st, err := c.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 {
		t.Fatalf("%d shards done, want 1", st.Done)
	}
	// The acked artifact on disk must validate.
	if _, err := sweepfile.LoadArtifact(m, srv.store.jobDir(id), grant.Shard); err != nil {
		t.Fatalf("acked artifact does not validate on disk: %v", err)
	}
}

// TestMergeSelfHealsCorruptShard: corrupting a spooled artifact after
// its ack must re-queue that shard at merge time (not fail the job),
// and the re-run must still produce the byte-identical result.
func TestMergeSelfHealsCorruptShard(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	spool := t.TempDir()
	srv, ts, c := startServer(t, spool, time.Minute)
	defer ts.Close()
	defer srv.Close()

	ctx := context.Background()
	id, err := c.Submit(ctx, testSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := sweepfile.LoadManifest(filepath.Join(srv.store.jobDir(id), "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sweepfile.BuildSweepSpec(testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}

	// Complete shards 0 and 1 honestly.
	for i := 0; i < 2; i++ {
		grant, err := c.Acquire(ctx, "w1")
		if err != nil || grant == nil {
			t.Fatalf("acquire %d: %v %v", i, grant, err)
		}
		res, err := crn.RunShard(ctx, spec, m.Plan, grant.Shard)
		if err != nil {
			t.Fatal(err)
		}
		a, err := sweepfile.NewArtifact(m.PlanHash, res)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Complete(ctx, grant.Lease, a); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt shard 0's spooled artifact behind the daemon's back:
	// flip one bit inside the payload (still well-formed JSON bytes on
	// disk length-wise; the content sum is what catches it).
	path := filepath.Join(srv.store.jobDir(id), m.Artifacts[0])
	doc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doc[len(doc)/2] ^= 0x01
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}

	// Complete the last shard: the merge sees the corrupt artifact,
	// re-queues shard 0 instead of failing the job.
	grant, err := c.Acquire(ctx, "w1")
	if err != nil || grant == nil {
		t.Fatalf("acquire last: %v %v", grant, err)
	}
	res, err := crn.RunShard(ctx, spec, m.Plan, grant.Shard)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sweepfile.NewArtifact(m.PlanHash, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(ctx, grant.Lease, a); err != nil {
		t.Fatal(err)
	}

	st, err := c.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State == JobFailed {
		t.Fatalf("corrupt shard failed the whole job: %s", st.Error)
	}
	if st.Shards[0].State != ShardPending {
		t.Fatalf("corrupt shard 0 is %q, want re-queued pending", st.Shards[0].State)
	}

	// Re-run the invalidated shard; the job must now merge and match
	// the in-process bytes exactly.
	grant, err = c.Acquire(ctx, "w2")
	if err != nil || grant == nil || grant.Shard != 0 {
		t.Fatalf("re-acquire: %+v %v", grant, err)
	}
	res, err = crn.RunShard(ctx, spec, m.Plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err = sweepfile.NewArtifact(m.PlanHash, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(ctx, grant.Lease, a); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, id, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	_, got, err := c.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if want := directBytes(t, testSpec()); string(got) != string(want) {
		t.Error("self-healed result diverged from in-process crn.Sweep")
	}
}

// corruptReadFS flips one byte on reads of files matching substr,
// after skipping the first skip matching reads, for flips reads.
type corruptReadFS struct {
	sweepfile.FS
	substr string
	skip   atomic.Int64
	flips  atomic.Int64
}

func (f *corruptReadFS) ReadFile(path string) ([]byte, error) {
	doc, err := f.FS.ReadFile(path)
	if err != nil || !strings.Contains(path, f.substr) {
		return doc, err
	}
	if f.skip.Add(-1) >= 0 {
		return doc, nil
	}
	if f.flips.Add(-1) >= 0 && len(doc) > 0 {
		bad := append([]byte(nil), doc...)
		bad[len(bad)/2] ^= 0x01
		return bad, nil
	}
	return doc, nil
}

// TestResultServeDetectsCorruptRead: a read of merged.json that goes
// bad while serving /result must surface as a retryable 500 — never
// as corrupted bytes with a 200 — and the idempotent retry succeeds.
func TestResultServeDetectsCorruptRead(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	// Read #1 of merged.json is the merge's own read-back verification;
	// corrupt read #2, the first result serve.
	cfs := &corruptReadFS{FS: sweepfile.OS, substr: "merged.json"}
	cfs.skip.Store(1)
	cfs.flips.Store(1)
	srv, err := New(Config{Spool: t.TempDir(), LeaseTTL: time.Minute, FS: cfs, Log: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := fastClient(ts.URL)

	ctx := context.Background()
	id, err := c.Submit(ctx, testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	wk := &Worker{Client: NewClient(ts.URL), Name: "w1", Workers: 2, Poll: 10 * time.Millisecond, MaxShards: 1, Log: quietLog()}
	if err := <-runWorker(ctx, wk); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, id, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	_, doc, err := c.Result(ctx, id)
	if err != nil {
		t.Fatalf("result after retryable corrupt read: %v", err)
	}
	if cfs.flips.Load() >= 0 {
		t.Fatal("the corrupt read was never consumed — the test exercised nothing")
	}
	if !bytes.Equal(doc, directBytes(t, testSpec())) {
		t.Error("served result diverged from the in-process sweep")
	}
}

// failingReadFS fails reads of files matching substr, count times.
type failingReadFS struct {
	sweepfile.FS
	substr string
	left   atomic.Int64
}

func (f *failingReadFS) ReadFile(path string) ([]byte, error) {
	if strings.Contains(path, f.substr) && f.left.Add(-1) >= 0 {
		return nil, fmt.Errorf("injected read error: %s", path)
	}
	return f.FS.ReadFile(path)
}

// TestRestartResumeCorruptionTable: a daemon restarted on a spool
// where one done shard's artifact was damaged — truncated, bit-
// flipped, wrong plan hash, or replaced by a crashed writer's
// zero-length temp file — must re-queue exactly that shard and keep
// the intact ones.
func TestRestartResumeCorruptionTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated JSON", func(t *testing.T, path string) {
			doc, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, doc[:len(doc)/3], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flipped payload", func(t *testing.T, path string) {
			doc, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			doc[len(doc)/2] ^= 0x01
			if err := os.WriteFile(path, doc, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong planHash", func(t *testing.T, path string) {
			doc, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			s := strings.Replace(string(doc), `"planHash": "sha256:`, `"planHash": "sha256:dead`, 1)
			if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"zero-length temp debris", func(t *testing.T, path string) {
			// The crash-between-temp-write-and-rename shape: the real
			// artifact is gone, a zero-length temp file remains.
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path+".tmp-777", nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := context.Background()
			spool := t.TempDir()
			srv1, ts1, c1 := startServer(t, spool, time.Minute)
			id, err := c1.Submit(ctx, testSpec(), 4)
			if err != nil {
				t.Fatal(err)
			}
			wk := &Worker{Client: c1, Name: "w1", Workers: 2, Poll: 10 * time.Millisecond, MaxShards: 2, Log: quietLog()}
			if err := <-runWorker(ctx, wk); err != nil {
				t.Fatal(err)
			}
			st, err := c1.Status(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			var done []int
			for _, sh := range st.Shards {
				if sh.State == ShardDone {
					done = append(done, sh.Shard)
				}
			}
			if len(done) != 2 {
				t.Fatalf("setup: %d shards done, want 2", len(done))
			}
			ts1.Close()
			srv1.Close()

			m, _, err := sweepfile.LoadManifest(filepath.Join(spool, "jobs", id, "manifest.json"))
			if err != nil {
				t.Fatal(err)
			}
			victim := done[0]
			tc.corrupt(t, filepath.Join(spool, "jobs", id, m.Artifacts[victim]))

			srv2, ts2, c2 := startServer(t, spool, time.Minute)
			defer ts2.Close()
			defer srv2.Close()
			st, err = c2.Status(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if st.Done != 1 {
				t.Fatalf("recovered %d done shards, want 1 (the intact one)", st.Done)
			}
			if st.Shards[victim].State != ShardPending {
				t.Fatalf("corrupted shard %d recovered as %q, want pending", victim, st.Shards[victim].State)
			}
			if st.Shards[done[1]].State != ShardDone {
				t.Fatalf("intact shard %d recovered as %q, want done", done[1], st.Shards[done[1]].State)
			}
			// Stale temp debris is swept on recovery.
			entries, err := os.ReadDir(filepath.Join(spool, "jobs", id))
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if sweepfile.IsTempFile(e.Name()) {
					t.Errorf("recovery left temp debris %s", e.Name())
				}
			}

			// Finish the job; the healed result must match the
			// in-process bytes exactly.
			wk2 := &Worker{Client: c2, Name: "w2", Workers: 2, Poll: 10 * time.Millisecond, MaxShards: 3, Log: quietLog()}
			if err := <-runWorker(ctx, wk2); err != nil {
				t.Fatal(err)
			}
			if _, err := c2.Wait(ctx, id, 10*time.Millisecond); err != nil {
				t.Fatal(err)
			}
			_, got, err := c2.Result(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if want := directBytes(t, testSpec()); string(got) != string(want) {
				t.Error("healed result diverged from in-process crn.Sweep")
			}
		})
	}
}

// TestJanitorRetriesDeferredMerge: a transient failure while writing
// merged.json must leave the job all-done-unmerged and let the
// janitor's retry finish it — not fail the job.
func TestJanitorRetriesDeferredMerge(t *testing.T) {
	m, err := sweepfile.NewManifest(testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the merged.json read-back once: mergeJob's write errors
	// transiently, then succeeds on the janitor's retry.
	ffs := &failingReadFS{FS: sweepfile.OS, substr: "merged.json"}
	ffs.left.Store(1)
	srv, err := New(Config{Spool: t.TempDir(), LeaseTTL: 400 * time.Millisecond, FS: ffs, Log: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)

	ctx := context.Background()
	id, err := c.Submit(ctx, testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Execute the shard before taking the lease: under -race the run
	// can outlast a 400ms TTL, and this test is about the janitor's
	// merge retry, not lease expiry.
	spec, err := sweepfile.BuildSweepSpec(testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := crn.RunShard(ctx, spec, m.Plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sweepfile.NewArtifact(m.PlanHash, res)
	if err != nil {
		t.Fatal(err)
	}
	grant, err := c.Acquire(ctx, "w1")
	if err != nil || grant == nil {
		t.Fatalf("acquire: %v %v", grant, err)
	}
	if err := c.Complete(ctx, grant.Lease, a); err != nil {
		t.Fatalf("complete should ack even when the merge defers: %v", err)
	}
	// The janitor (ticking at TTL/4) retries the merge.
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	st, err := c.Wait(wctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("job never merged after transient write failure: %v", err)
	}
	if st.State != JobDone {
		t.Fatalf("job state %s, want done", st.State)
	}
}
