// Package chaos is a deterministic, seed-driven fault injector for
// the distributed sweep stack. It mirrors the source paper's threat
// model: there, a protocol must deliver its guarantees under a
// t-bounded adversary that disrupts a budgeted number of (node,
// channel) pairs per round; here, the sweep service must deliver
// byte-identical results under a budgeted number of transport,
// storage and process faults per run. Both contracts are "correct
// under a disruption budget", and both are checked the same way —
// the output bytes must not depend on what the adversary did.
//
// A chaos Spec declares fault budgets per boundary the way
// spectrum.Compose declares disruption models: small declarative
// pieces stacked into one plan. NewPlan compiles the spec into
// pre-drawn fault schedules, one rng.Split stream per boundary, so
// the schedule is a pure function of the seed: which events fault,
// with what, in what order, is decided before the run starts and is
// identical on every replay of that seed. (Which *request* lands on
// which event index depends on goroutine interleaving — the schedule
// is deterministic, the race that maps traffic onto it is real, which
// is exactly the point.)
package chaos

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"crn/internal/rng"
)

// Fault kinds, by boundary.
const (
	// Transport (client-side RoundTripper).
	FaultDropRequest = "drop-request" // connection reset before the daemon sees it
	FaultDropReply   = "drop-reply"   // daemon processed it, reply lost in transit
	FaultDuplicate   = "duplicate"    // request delivered twice
	FaultDelay       = "delay"        // response delayed

	// Server (mux middleware).
	FaultError500 = "error-500" // 5xx before the handler runs
	FaultShed429  = "shed-429"  // overload shed with Retry-After

	// Storage writes (FS seam).
	FaultWriteErr = "write-error" // fsync-style failure, temp debris left behind
	FaultTorn     = "torn-write"  // truncated bytes land, success reported

	// Storage reads (FS seam).
	FaultCorrupt = "corrupt-read" // one bit flipped in the returned bytes
	FaultReadErr = "read-error"   // read fails outright
)

// Budget is one fault kind's allowance — the t in t-bounded.
type Budget struct {
	Kind  string
	Count int
}

// Spec declares a chaos run: a seed and per-boundary budgets with the
// per-event probability that a fault fires at all. The zero Spec
// injects nothing.
type Spec struct {
	Seed uint64

	// TransportRate is the per-request probability of attempting a
	// transport fault (spent against Transport budgets).
	TransportRate float64
	Transport     []Budget
	// MaxDelay bounds FaultDelay injections.
	MaxDelay time.Duration

	// ServerRate / Server: mux middleware faults on the lease paths.
	ServerRate float64
	Server     []Budget

	// WriteRate / Writes and ReadRate / Reads: spool filesystem faults.
	WriteRate float64
	Writes    []Budget
	ReadRate  float64
	Reads     []Budget

	// MaxWorkerAbandons bounds how many worker slots are scheduled to
	// die mid-shard (abandoning their lease without a word).
	MaxWorkerAbandons int
	// RestartProb is the probability the daemon is killed and
	// restarted mid-run (after a scheduled number of completed shards).
	RestartProb float64
}

// DefaultSpec is the standard chaos diet for the service matrix:
// every boundary armed, budgets small enough that runs complete,
// rates high enough that budgets are actually spent.
func DefaultSpec(seed uint64) Spec {
	return Spec{
		Seed:          seed,
		TransportRate: 0.15,
		Transport: []Budget{
			{FaultDropRequest, 2}, {FaultDropReply, 2},
			{FaultDuplicate, 2}, {FaultDelay, 3},
		},
		MaxDelay:   100 * time.Millisecond,
		ServerRate: 0.12,
		Server:     []Budget{{FaultError500, 3}, {FaultShed429, 3}},
		WriteRate:  0.20,
		Writes:     []Budget{{FaultWriteErr, 2}, {FaultTorn, 2}},
		ReadRate:   0.10,
		Reads:      []Budget{{FaultCorrupt, 2}, {FaultReadErr, 1}},

		MaxWorkerAbandons: 1,
		RestartProb:       0.4,
	}
}

// scheduleHorizon is how many events per boundary get a pre-drawn
// verdict; events past it never fault (budgets run out far earlier).
const scheduleHorizon = 4096

// Schedule is one boundary's pre-drawn fault timetable: event index →
// fault kind. Injectors call take() once per event (request, write,
// read); the mapping from live traffic to event indices is
// first-come-first-served.
type Schedule struct {
	mu       sync.Mutex
	next     int
	faults   map[int]string
	delays   map[int]time.Duration
	injected map[string]int
}

func buildSchedule(src *rng.Source, rate float64, budgets []Budget, maxDelay time.Duration) *Schedule {
	s := &Schedule{
		faults:   make(map[int]string),
		delays:   make(map[int]time.Duration),
		injected: make(map[string]int),
	}
	remaining := make(map[string]int, len(budgets))
	order := make([]string, 0, len(budgets))
	total := 0
	for _, b := range budgets {
		remaining[b.Kind] = b.Count
		order = append(order, b.Kind)
		total += b.Count
	}
	var avail []string
	for i := 0; i < scheduleHorizon && total > 0; i++ {
		if !src.Bernoulli(rate) {
			continue
		}
		avail = avail[:0]
		for _, k := range order {
			if remaining[k] > 0 {
				avail = append(avail, k)
			}
		}
		kind := avail[src.Intn(len(avail))]
		remaining[kind]--
		total--
		s.faults[i] = kind
		if kind == FaultDelay && maxDelay > 0 {
			s.delays[i] = time.Duration(src.Intn(int(maxDelay)))
		}
	}
	return s
}

// take advances the event counter and returns the fault (if any)
// scheduled for this event.
func (s *Schedule) take() (kind string, delay time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.next
	s.next++
	kind = s.faults[i]
	if kind != "" {
		s.injected[kind]++
	}
	return kind, s.delays[i]
}

// Injected counts the faults this schedule has actually fired so far.
func (s *Schedule) Injected() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.injected))
	for k, v := range s.injected {
		out[k] = v
	}
	return out
}

// describe renders the full pre-drawn timetable, sorted by event
// index — the replay-determinism witness.
func (s *Schedule) describe(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := make([]int, 0, len(s.faults))
	for i := range s.faults {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make([]string, 0, len(idx))
	for _, i := range idx {
		line := fmt.Sprintf("%s[%d]=%s", prefix, i, s.faults[i])
		if d, ok := s.delays[i]; ok {
			line += fmt.Sprintf("+%v", d)
		}
		out = append(out, line)
	}
	return out
}

// ProcessPlan is the compiled process-boundary schedule: which worker
// slots die mid-shard, and whether/when the daemon restarts.
type ProcessPlan struct {
	// WorkerAbandons[slot] > 0: that worker exits after acquiring its
	// Nth lease without completing, failing or heartbeating it (the
	// supervisor then starts a clean replacement).
	WorkerAbandons []int
	// RestartAfterDone > 0: kill and restart the daemon once that many
	// shards have been acked. 0: no restart.
	RestartAfterDone int
}

// Plan is a compiled Spec: one pre-drawn schedule per boundary, each
// derived from its own rng.Split stream so adding faults to one
// boundary never perturbs another's timetable.
type Plan struct {
	Spec      Spec
	Transport *Schedule
	Server    *Schedule
	Writes    *Schedule
	Reads     *Schedule

	process *rng.Source
}

// Stream ids under the chaos root — the same fan-out discipline the
// simulator uses for per-run seeds.
const (
	streamTransport = 1
	streamServer    = 2
	streamWrites    = 3
	streamReads     = 4
	streamProcess   = 5
)

// NewPlan compiles spec into its deterministic fault timetables.
func NewPlan(spec Spec) *Plan {
	root := rng.New(spec.Seed)
	return &Plan{
		Spec:      spec,
		Transport: buildSchedule(root.Split(streamTransport), spec.TransportRate, spec.Transport, spec.MaxDelay),
		Server:    buildSchedule(root.Split(streamServer), spec.ServerRate, spec.Server, 0),
		Writes:    buildSchedule(root.Split(streamWrites), spec.WriteRate, spec.Writes, 0),
		Reads:     buildSchedule(root.Split(streamReads), spec.ReadRate, spec.Reads, 0),
		process:   root.Split(streamProcess),
	}
}

// ProcessPlan draws the process-boundary schedule for a run with the
// given worker and shard counts. Call once per plan: the draws come
// off the dedicated process stream in a fixed order, so the result is
// a pure function of (seed, workers, shards).
func (p *Plan) ProcessPlan(workers, shards int) ProcessPlan {
	pp := ProcessPlan{WorkerAbandons: make([]int, workers)}
	n := p.Spec.MaxWorkerAbandons
	if n > workers {
		n = workers
	}
	for i := 0; i < n; i++ {
		if slot := p.process.Intn(workers); pp.WorkerAbandons[slot] == 0 {
			// Die on the 1st or 2nd lease: early enough to matter.
			pp.WorkerAbandons[slot] = 1 + p.process.Intn(2)
		}
	}
	if p.process.Bernoulli(p.Spec.RestartProb) && shards > 1 {
		pp.RestartAfterDone = 1 + p.process.Intn(shards-1)
	}
	return pp
}

// Describe renders every pre-drawn fault in the plan, sorted within
// each boundary — two plans built from the same Spec always describe
// identically (the determinism contract the tests pin down).
func (p *Plan) Describe() []string {
	var out []string
	out = append(out, p.Transport.describe("transport")...)
	out = append(out, p.Server.describe("server")...)
	out = append(out, p.Writes.describe("write")...)
	out = append(out, p.Reads.describe("read")...)
	return out
}

// Injected aggregates fired-fault counts across all boundaries.
func (p *Plan) Injected() map[string]int {
	out := make(map[string]int)
	for _, s := range []*Schedule{p.Transport, p.Server, p.Writes, p.Reads} {
		for k, v := range s.Injected() {
			out[k] += v
		}
	}
	return out
}
