package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Logf receives fault-injection narration (default: silent).
type Logf func(format string, args ...any)

func noLog(string, ...any) {}

// Transport is an http.RoundTripper that injects client-visible
// network faults per a pre-drawn Schedule: dropped requests
// (connection reset before the daemon sees anything), dropped replies
// (the daemon processed the request — the dangerous half of
// at-most-once), duplicated requests, and delays. Plug it into
// sweepd.NewClient via sweepd.WithTransport.
type Transport struct {
	Base  http.RoundTripper
	Sched *Schedule
	Log   Logf
}

// NewTransport wires a chaos transport over the default RoundTripper.
func NewTransport(sched *Schedule, log Logf) *Transport {
	if log == nil {
		log = noLog
	}
	return &Transport{Base: http.DefaultTransport, Sched: sched, Log: log}
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	kind, delay := t.Sched.take()
	switch kind {
	case FaultDropRequest:
		// Swallow the request whole: the daemon never saw it, the
		// caller sees a reset. The safe failure — nothing happened.
		t.Log("chaos: transport: %s %s %s", FaultDropRequest, req.Method, req.URL.Path)
		return nil, fmt.Errorf("chaos: connection reset by peer (request dropped)")

	case FaultDropReply:
		// Deliver the request, lose the reply: the daemon's state
		// changed and the caller cannot know. This is the fault that
		// forces Complete to be idempotent.
		t.Log("chaos: transport: %s %s %s", FaultDropReply, req.Method, req.URL.Path)
		resp, err := t.Base.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return nil, fmt.Errorf("chaos: connection reset by peer (reply dropped)")

	case FaultDuplicate:
		// Deliver the request twice (a retransmit the daemon must
		// tolerate); hand the second reply to the caller.
		t.Log("chaos: transport: %s %s %s", FaultDuplicate, req.Method, req.URL.Path)
		if first, err := t.Base.RoundTrip(cloneRequest(req)); err == nil {
			io.Copy(io.Discard, first.Body)
			first.Body.Close()
		}
		return t.Base.RoundTrip(req)

	case FaultDelay:
		t.Log("chaos: transport: %s %v %s %s", FaultDelay, delay, req.Method, req.URL.Path)
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
		return t.Base.RoundTrip(req)

	default:
		return t.Base.RoundTrip(req)
	}
}

// cloneRequest deep-copies req with a fresh body so it can be sent
// twice. Requests without GetBody (none in the sweepd client) are
// duplicated body-less.
func cloneRequest(req *http.Request) *http.Request {
	c := req.Clone(req.Context())
	if req.GetBody != nil {
		if body, err := req.GetBody(); err == nil {
			c.Body = body
		}
	}
	return c
}

// Middleware wraps the daemon's handler with server-side faults —
// 5xx storms and overload sheds (429 + Retry-After), injected before
// the real handler runs, so an injected failure always means "not
// processed" (matching what those statuses promise the client).
//
// Faults fire only on the lease paths (acquire, heartbeat, complete,
// fail): that is the worker traffic the retry/idempotency machinery
// protects. Control-plane calls (submit, status, result) and healthz
// pass through untouched so the harness can always observe the run.
func Middleware(sched *Schedule, log Logf, next http.Handler) http.Handler {
	if log == nil {
		log = noLog
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/api/v1/lease") {
			next.ServeHTTP(w, r)
			return
		}
		kind, _ := sched.take()
		switch kind {
		case FaultError500:
			log("chaos: server: %s %s %s", FaultError500, r.Method, r.URL.Path)
			http.Error(w, `{"error":"chaos: injected internal error"}`, http.StatusInternalServerError)
		case FaultShed429:
			log("chaos: server: %s %s %s", FaultShed429, r.Method, r.URL.Path)
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"chaos: injected overload shed"}`, http.StatusTooManyRequests)
		default:
			next.ServeHTTP(w, r)
		}
	})
}
