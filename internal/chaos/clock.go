package chaos

import (
	"sync"
	"time"
)

// Clock abstracts "what time is it" for components that make
// time-based decisions (lease expiry, heartbeat deadlines). The
// daemon's queue takes a now-func (sweepd.Config.Now), so a
// ManualClock turns every lease-TTL test into pure state-machine
// arithmetic: advance the clock past the TTL and observe the expiry —
// no wall-clock sleeps, no flakes by construction.
type Clock interface {
	Now() time.Time
}

// Wall is the real clock.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// ManualClock only moves when told to. Safe for concurrent use.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock starts a manual clock at t.
func NewManualClock(t time.Time) *ManualClock {
	return &ManualClock{t: t}
}

func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d and returns the new time.
func (c *ManualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}
