package chaos

import (
	"context"
	"log"
	"os"
	"testing"
	"time"

	"crn/internal/sweepfile"
)

func matrixSpec() *sweepfile.Spec {
	return &sweepfile.Spec{
		Primitive: "cseek",
		Seeds:     4,
		BaseSeed:  42,
		Variants: []sweepfile.Variant{
			{Name: "quiet-path", Topology: "path", N: 6, Channels: 3, K: 2, Seed: 1},
			{Name: "busy-star", Topology: "star", N: 8, Channels: 4, K: 2, Seed: 2, Preset: "urban-busy"},
		},
	}
}

// TestMatrixUnderChaos is the tentpole's own test: a handful of
// seeded fault schedules against the full two-worker service stack.
// Every run that completes must be byte-identical to the in-process
// sweep, and no acked artifact may ever be lost — completed or not.
// (CI runs the wide 32-seed matrix through `crnsweepd chaos`.)
func TestMatrixUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations under fault injection")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	results, err := RunMatrix(ctx, MatrixConfig{
		Spec:     matrixSpec(),
		Shards:   4,
		Workers:  2,
		SeedBase: 1,
		Seeds:    4,
		LeaseTTL: 1500 * time.Millisecond,
		Timeout:  45 * time.Second,
		Log:      log.New(os.Stderr, "chaos: ", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	for _, r := range results {
		if r.AckedLost > 0 {
			t.Errorf("seed %d: %d acked artifacts lost", r.Seed, r.AckedLost)
		}
		if r.Completed {
			completed++
			if !r.ByteIdentical {
				t.Errorf("seed %d: completed but diverged: %s", r.Seed, r.Err)
			}
		} else {
			t.Logf("seed %d did not complete: %s (faults %v)", r.Seed, r.Err, r.Injected)
		}
	}
	// The budgets are sized so runs finish; an all-timeout matrix
	// means the hardening regressed, not that chaos won fairly.
	if completed == 0 {
		t.Fatal("no seed completed its run")
	}
}
