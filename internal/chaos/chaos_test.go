package chaos

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"crn/internal/sweepfile"
)

// mkSched hand-builds a schedule: kinds[i] is event i's fault ("" for
// none).
func mkSched(kinds ...string) *Schedule {
	s := &Schedule{
		faults:   map[int]string{},
		delays:   map[int]time.Duration{},
		injected: map[string]int{},
	}
	for i, k := range kinds {
		if k != "" {
			s.faults[i] = k
		}
	}
	return s
}

// TestPlanDeterminism pins the acceptance criterion that the same
// chaos seed replays the same fault schedule: two plans compiled from
// the same spec must describe identical timetables (and identical
// process plans), while a different seed must diverge.
func TestPlanDeterminism(t *testing.T) {
	a, b := NewPlan(DefaultSpec(7)), NewPlan(DefaultSpec(7))
	da, db := a.Describe(), b.Describe()
	if len(da) == 0 {
		t.Fatal("default spec drew an empty fault schedule")
	}
	if !reflect.DeepEqual(da, db) {
		t.Fatalf("same seed, different schedules:\n%v\nvs\n%v", da, db)
	}
	pa, pb := a.ProcessPlan(2, 4), b.ProcessPlan(2, 4)
	if !reflect.DeepEqual(pa, pb) {
		t.Fatalf("same seed, different process plans: %+v vs %+v", pa, pb)
	}
	if c := NewPlan(DefaultSpec(8)); reflect.DeepEqual(da, c.Describe()) {
		t.Fatal("different seeds drew identical schedules")
	}
}

// TestScheduleBudgetsBounded checks the t-bounded contract: a
// schedule never plans more faults of a kind than its budget allows.
func TestScheduleBudgetsBounded(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		spec := DefaultSpec(seed)
		p := NewPlan(spec)
		for _, tc := range []struct {
			sched   *Schedule
			budgets []Budget
		}{
			{p.Transport, spec.Transport},
			{p.Server, spec.Server},
			{p.Writes, spec.Writes},
			{p.Reads, spec.Reads},
		} {
			counts := map[string]int{}
			for _, k := range tc.sched.faults {
				counts[k]++
			}
			for _, b := range tc.budgets {
				if counts[b.Kind] > b.Count {
					t.Errorf("seed %d: %d %s faults planned, budget %d", seed, counts[b.Kind], b.Kind, b.Count)
				}
			}
		}
	}
}

func TestFSWriteFaults(t *testing.T) {
	dir := t.TempDir()
	fs := NewFS(mkSched(FaultWriteErr, FaultTorn, ""), mkSched(), t.Logf)
	path := filepath.Join(dir, "artifact.json")
	data := []byte(`{"ok":true}`)

	// Event 0: write error, plus zero-length temp debris for recovery
	// to find.
	if err := fs.WriteFileAtomic(path, data); err == nil {
		t.Fatal("injected write error reported success")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	debris := 0
	for _, e := range entries {
		if sweepfile.IsTempFile(e.Name()) {
			debris++
			if info, _ := e.Info(); info.Size() != 0 {
				t.Errorf("debris %s has %d bytes, want zero-length", e.Name(), info.Size())
			}
		}
	}
	if debris != 1 {
		t.Fatalf("found %d temp debris files, want 1", debris)
	}

	// Event 1: torn write — success reported, truncated bytes on disk.
	if err := fs.WriteFileAtomic(path, data); err != nil {
		t.Fatalf("torn write should report success, got %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data)/2 {
		t.Fatalf("torn write landed %d bytes, want %d", len(got), len(data)/2)
	}

	// Event 2: clean write heals the file.
	if err := fs.WriteFileAtomic(path, data); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != string(data) {
		t.Fatalf("clean write landed %q, want %q", got, data)
	}

	// The debris is exactly what RemoveStaleTemps sweeps.
	removed, err := sweepfile.RemoveStaleTemps(sweepfile.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 {
		t.Fatalf("RemoveStaleTemps removed %v, want the 1 debris file", removed)
	}
}

func TestFSReadFaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.json")
	data := []byte(`{"n":12345}`)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fs := NewFS(mkSched(), mkSched(FaultCorrupt, FaultReadErr, ""), t.Logf)

	// Event 0: corrupt read — exactly one bit differs, disk untouched.
	got, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt read changed %d bytes, want exactly 1", diff)
	}
	if onDisk, _ := os.ReadFile(path); string(onDisk) != string(data) {
		t.Fatal("corrupt read damaged the file on disk")
	}

	// Event 1: read error.
	if _, err := fs.ReadFile(path); err == nil {
		t.Fatal("injected read error reported success")
	}

	// Event 2: clean.
	if got, err := fs.ReadFile(path); err != nil || string(got) != string(data) {
		t.Fatalf("clean read: %q, %v", got, err)
	}
}

func TestTransportFaults(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	tr := NewTransport(mkSched(FaultDropRequest, FaultDropReply, FaultDuplicate, ""), t.Logf)
	hc := &http.Client{Transport: tr}

	// Event 0: dropped request — the server never sees it.
	if _, err := hc.Get(ts.URL); err == nil {
		t.Fatal("dropped request returned a response")
	}
	if n := hits.Load(); n != 0 {
		t.Fatalf("dropped request reached the server (%d hits)", n)
	}

	// Event 1: dropped reply — the server processed it, caller errors.
	if _, err := hc.Get(ts.URL); err == nil {
		t.Fatal("dropped reply returned a response")
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("dropped-reply request hit the server %d times, want 1", n)
	}

	// Event 2: duplicate — delivered twice, caller gets a response.
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatalf("duplicated request failed: %v", err)
	}
	resp.Body.Close()
	if n := hits.Load(); n != 3 {
		t.Fatalf("duplicate delivered %d total hits, want 3", n)
	}

	// Event 3: clean.
	resp, err = hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if n := hits.Load(); n != 4 {
		t.Fatalf("clean request: %d total hits, want 4", n)
	}
}

func TestMiddlewareFaultsLeasePathsOnly(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	// Every lease-path event faults; control paths never do.
	h := Middleware(mkSched(FaultShed429, FaultError500), t.Logf, inner)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/jobs/j1", nil))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("control path got chaosed: %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/api/v1/lease", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("lease path: got %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed reply missing Retry-After")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/api/v1/leases/l1/heartbeat", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("lease path: got %d, want 500", rec.Code)
	}
}

// TestManualClock pins the deflake-by-construction property: time is
// state, not waiting.
func TestManualClock(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	mc := NewManualClock(base)
	if !mc.Now().Equal(base) {
		t.Fatal("manual clock did not start at base")
	}
	if got := mc.Advance(90 * time.Second); !got.Equal(base.Add(90 * time.Second)) {
		t.Fatalf("Advance returned %v", got)
	}
	if !mc.Now().Equal(base.Add(90 * time.Second)) {
		t.Fatal("Advance did not stick")
	}
}

// TestDelayRespectsContext: an injected delay must not outlive the
// request's deadline — the client's per-request timeout stays in
// charge.
func TestDelayRespectsContext(t *testing.T) {
	s := mkSched(FaultDelay)
	s.delays[0] = 10 * time.Second
	tr := NewTransport(s, t.Logf)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://127.0.0.1:1/nope", nil)
	start := time.Now()
	_, err := tr.RoundTrip(req)
	if err == nil {
		t.Fatal("expected context error")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("got %v, want deadline error", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delay ignored the context (%v elapsed)", elapsed)
	}
}
