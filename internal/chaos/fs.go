package chaos

import (
	"fmt"
	"io/fs"
	"sync/atomic"

	"crn/internal/sweepfile"
)

// FS wraps a sweepfile.FS with storage faults per two pre-drawn
// schedules (one for writes, one for reads):
//
//   - write-error: the write fails like a full disk or failed fsync,
//     leaving a zero-length ".tmp-chaos-*" debris file — exactly the
//     wreckage of a writer crashed between temp-write and rename.
//   - torn-write: only a truncated prefix lands on disk, yet the
//     write reports success — the lying-disk case that only the
//     store's read-back verification can catch.
//   - corrupt-read: the file is fine on disk but one bit flips on the
//     way up — caught by the artifact content sum.
//   - read-error: the read fails outright.
type FS struct {
	Base   sweepfile.FS
	Writes *Schedule
	Reads  *Schedule
	Log    Logf

	debris atomic.Int64 // names the .tmp-chaos debris files uniquely
}

// NewFS wires chaos storage faults over the real filesystem.
func NewFS(writes, reads *Schedule, log Logf) *FS {
	if log == nil {
		log = noLog
	}
	return &FS{Base: sweepfile.OS, Writes: writes, Reads: reads, Log: log}
}

var _ sweepfile.FS = (*FS)(nil)

func (c *FS) ReadFile(path string) ([]byte, error) {
	kind, _ := c.Reads.take()
	switch kind {
	case FaultReadErr:
		c.Log("chaos: fs: %s %s", FaultReadErr, path)
		return nil, fmt.Errorf("chaos: injected read error: %s", path)
	case FaultCorrupt:
		doc, err := c.Base.ReadFile(path)
		if err != nil || len(doc) == 0 {
			return doc, err
		}
		c.Log("chaos: fs: %s %s", FaultCorrupt, path)
		flipped := make([]byte, len(doc))
		copy(flipped, doc)
		flipped[len(flipped)/2] ^= 0x01
		return flipped, nil
	default:
		return c.Base.ReadFile(path)
	}
}

func (c *FS) WriteFileAtomic(path string, data []byte) error {
	kind, _ := c.Writes.take()
	switch kind {
	case FaultWriteErr:
		c.Log("chaos: fs: %s %s", FaultWriteErr, path)
		// The failed writer's corpse: a zero-length temp file next to
		// the destination, for recovery to sweep up.
		debris := fmt.Sprintf("%s.tmp-chaos%d", path, c.debris.Add(1))
		c.Base.WriteFileAtomic(debris, nil)
		return fmt.Errorf("chaos: injected write error: %s", path)
	case FaultTorn:
		c.Log("chaos: fs: %s %s (%d of %d bytes land)", FaultTorn, path, len(data)/2, len(data))
		return c.Base.WriteFileAtomic(path, data[:len(data)/2])
	default:
		return c.Base.WriteFileAtomic(path, data)
	}
}

func (c *FS) MkdirAll(path string) error                 { return c.Base.MkdirAll(path) }
func (c *FS) ReadDir(path string) ([]fs.DirEntry, error) { return c.Base.ReadDir(path) }
func (c *FS) Remove(path string) error                   { return c.Base.Remove(path) }
