package chaos

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"crn"
	"crn/internal/sweepd"
	"crn/internal/sweepfile"
)

// MatrixConfig parameterizes a chaos matrix: N seeded fault schedules,
// each run against a fresh two-worker service stack, each surviving
// result byte-diffed against the single-process crn.Sweep reference.
type MatrixConfig struct {
	// Spec is the sweep to run (required).
	Spec *sweepfile.Spec
	// Shards to split the sweep into (default 4).
	Shards int
	// Workers is the worker-slot count (default 2). A slot whose
	// worker dies mid-shard gets a clean replacement.
	Workers int
	// SeedBase and Seeds define the chaos seeds: SeedBase … SeedBase+Seeds-1
	// (defaults 1 and 8).
	SeedBase uint64
	Seeds    int
	// ChaosSpec builds the fault spec per seed (default DefaultSpec).
	ChaosSpec func(seed uint64) Spec
	// LeaseTTL for the daemon under test (default 2s — short, so
	// abandoned leases re-dispatch fast).
	LeaseTTL time.Duration
	// Timeout bounds one seed's run (default 60s).
	Timeout time.Duration
	// Parallel seeds in flight at once (default min(4, NumCPU)).
	Parallel int
	// Log receives per-seed narration (default: discard).
	Log *log.Logger
}

// SeedResult is one seed's verdict.
type SeedResult struct {
	Seed uint64 `json:"seed"`
	// Completed: the job reached JobDone within the timeout.
	Completed bool `json:"completed"`
	// ByteIdentical: the merged result equals the single-process
	// reference, byte for byte. Meaningful only when Completed.
	ByteIdentical bool `json:"byteIdentical"`
	// AckedLost counts acked shards whose artifact did not validate
	// on disk afterwards — must always be 0, completed or not.
	AckedLost int `json:"ackedLost"`
	// Acked is how many shard completions the daemon acked.
	Acked int `json:"acked"`
	// Restarted: the daemon was killed and restarted mid-run.
	Restarted bool `json:"restarted"`
	// Injected counts faults actually fired, by kind.
	Injected map[string]int `json:"injected"`
	// Err describes a run that did not complete.
	Err string `json:"err,omitempty"`
}

// OK reports whether the seed upheld the contract: no acked artifact
// lost, and — if the run completed — byte-identical output.
func (r *SeedResult) OK() bool {
	if r.AckedLost > 0 {
		return false
	}
	return !r.Completed || r.ByteIdentical
}

// Reference computes the matrix's ground truth: the exact bytes an
// in-process crn.Sweep of the spec produces under the shared encoder.
func Reference(ctx context.Context, sf *sweepfile.Spec) ([]byte, error) {
	spec, err := sweepfile.BuildSweepSpec(sf, 0)
	if err != nil {
		return nil, err
	}
	res, err := crn.Sweep(ctx, spec)
	if err != nil {
		return nil, err
	}
	return sweepfile.MarshalPretty(res)
}

// RunMatrix runs every seed (Parallel at a time) and returns one
// result per seed, in seed order. The error is only for setup
// failures (an unbuildable spec); per-seed failures live in the
// results.
func RunMatrix(ctx context.Context, cfg MatrixConfig) ([]SeedResult, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("chaos: MatrixConfig.Spec is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 8
	}
	if cfg.SeedBase == 0 {
		cfg.SeedBase = 1
	}
	if cfg.ChaosSpec == nil {
		cfg.ChaosSpec = DefaultSpec
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 2 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = min(4, runtime.NumCPU())
	}
	if cfg.Log == nil {
		cfg.Log = log.New(os.Stderr, "", 0)
		cfg.Log.SetOutput(discard{})
	}
	ref, err := Reference(ctx, cfg.Spec)
	if err != nil {
		return nil, fmt.Errorf("chaos: computing reference sweep: %w", err)
	}

	results := make([]SeedResult, cfg.Seeds)
	sem := make(chan struct{}, cfg.Parallel)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Seeds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			seed := cfg.SeedBase + uint64(i)
			results[i] = runSeed(ctx, cfg, seed, ref)
			r := &results[i]
			cfg.Log.Printf("chaos: seed %d: completed=%v identical=%v acked=%d lost=%d restarted=%v faults=%v err=%q",
				seed, r.Completed, r.ByteIdentical, r.Acked, r.AckedLost, r.Restarted, r.Injected, r.Err)
		}(i)
	}
	wg.Wait()
	return results, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// runSeed runs one complete service-under-chaos lifecycle: spool,
// daemon (with chaos FS + server middleware), worker fleet (with
// chaos transports, scheduled deaths and replacements), an optional
// daemon kill+restart mid-run, then the verdict.
func runSeed(ctx context.Context, cfg MatrixConfig, seed uint64, reference []byte) (out SeedResult) {
	out = SeedResult{Seed: seed}
	plan := NewPlan(cfg.ChaosSpec(seed))
	pp := plan.ProcessPlan(cfg.Workers, cfg.Shards)
	defer func() { out.Injected = plan.Injected() }()
	logf := func(format string, args ...any) {
		cfg.Log.Printf("seed %d: "+format, append([]any{seed}, args...)...)
	}

	spool, err := os.MkdirTemp("", fmt.Sprintf("crn-chaos-%d-*", seed))
	if err != nil {
		out.Err = err.Error()
		return out
	}
	defer os.RemoveAll(spool)

	runCtx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()

	// The acked-artifact ledger: every completion the daemon acks is
	// recorded here, and every recorded (job, shard) must hold a valid
	// artifact on the real disk afterwards — chaos may slow the run
	// down or abort it, but it must never un-happen an ack.
	var (
		ackMu     sync.Mutex
		acked     = map[string]map[int]bool{}
		ackCount  int
		restartCh = make(chan struct{})
		restarted bool
	)
	onDone := func(jobID string, shard int) {
		ackMu.Lock()
		defer ackMu.Unlock()
		if acked[jobID] == nil {
			acked[jobID] = map[int]bool{}
		}
		acked[jobID][shard] = true
		ackCount++
		if pp.RestartAfterDone > 0 && ackCount == pp.RestartAfterDone && !restarted {
			restarted = true
			close(restartCh)
		}
	}

	quiet := log.New(discard{}, "", 0)
	chaosFS := NewFS(plan.Writes, plan.Reads, logf)
	newDaemon := func() (*sweepd.Server, error) {
		return sweepd.New(sweepd.Config{
			Spool:       spool,
			LeaseTTL:    cfg.LeaseTTL,
			MaxAttempts: 10,
			MaxInflight: 16,
			FS:          chaosFS,
			OnShardDone: onDone,
			Log:         quiet,
		})
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		out.Err = err.Error()
		return out
	}
	base := "http://" + ln.Addr().String()

	// Daemon lifecycle, restartable on the same port and spool.
	var daemonMu sync.Mutex
	var srv *sweepd.Server
	var hs *http.Server
	startDaemon := func(l net.Listener) error {
		s, err := newDaemon()
		if err != nil {
			return err
		}
		h := &http.Server{Handler: Middleware(plan.Server, logf, s.Handler())}
		daemonMu.Lock()
		srv, hs = s, h
		daemonMu.Unlock()
		go h.Serve(l)
		return nil
	}
	stopDaemon := func(drain time.Duration) {
		daemonMu.Lock()
		s, h := srv, hs
		srv, hs = nil, nil
		daemonMu.Unlock()
		if h != nil {
			sctx, scancel := context.WithTimeout(context.Background(), drain)
			h.Shutdown(sctx)
			scancel()
		}
		if s != nil {
			s.Close()
		}
	}
	if err := startDaemon(ln); err != nil {
		out.Err = err.Error()
		return out
	}
	defer stopDaemon(2 * time.Second)

	// Worker fleet: each slot supervises its worker, replacing one
	// that dies (a scheduled abandon) with a fresh generation.
	var workerWG sync.WaitGroup
	for slot := 0; slot < cfg.Workers; slot++ {
		workerWG.Add(1)
		go func(slot int) {
			defer workerWG.Done()
			abandon := pp.WorkerAbandons[slot]
			for gen := 0; runCtx.Err() == nil; gen++ {
				cl := sweepd.NewClient(base,
					sweepd.WithTransport(NewTransport(plan.Transport, logf)),
					sweepd.WithRequestTimeout(2*time.Second),
					sweepd.WithRetries(3, 50*time.Millisecond))
				w := &sweepd.Worker{
					Client:       cl,
					Name:         fmt.Sprintf("chaos-w%d.%d", slot, gen),
					Workers:      1,
					Poll:         25 * time.Millisecond,
					PollMax:      400 * time.Millisecond,
					AbandonAfter: abandon,
					Log:          quiet,
				}
				if abandon > 0 {
					logf("worker slot %d gen %d: scheduled to abandon lease %d", slot, gen, abandon)
				}
				w.Run(runCtx)
				abandon = 0 // replacements are healthy
			}
		}(slot)
	}
	defer workerWG.Wait()
	defer cancel() // stop workers before waiting on them

	// Scheduled daemon kill+restart: drain briefly, then bring the
	// daemon back on the same spool and port — recovery must re-queue
	// exactly the unacked shards.
	var restartWG sync.WaitGroup
	if pp.RestartAfterDone > 0 {
		restartWG.Add(1)
		go func() {
			defer restartWG.Done()
			select {
			case <-runCtx.Done():
				return
			case <-restartCh:
			}
			logf("restarting daemon after %d acked shards", pp.RestartAfterDone)
			out.Restarted = true
			stopDaemon(2 * time.Second)
			l2, err := net.Listen("tcp", ln.Addr().String())
			if err != nil {
				logf("re-listen: %v", err)
				return
			}
			if err := startDaemon(l2); err != nil {
				logf("daemon restart: %v", err)
			}
		}()
	}
	defer restartWG.Wait()

	// Control plane: no chaos transport (the middleware ignores
	// control paths too) — the observer must always be able to see.
	control := sweepd.NewClient(base,
		sweepd.WithRequestTimeout(2*time.Second),
		sweepd.WithRetries(5, 50*time.Millisecond))
	if err := control.WaitReady(runCtx, 5*time.Second); err != nil {
		out.Err = err.Error()
		return out
	}
	// Submit with reconciliation: the client never blindly retries a
	// failed Submit (the daemon may have queued the job), so on
	// failure we consult the job list — if a job is registered, adopt
	// it; if not, the submit provably never landed and resubmitting is
	// safe. This is the at-least-once-submit pattern the failure-model
	// doc prescribes for non-idempotent verbs.
	var id string
	for {
		var serr error
		if id, serr = control.Submit(runCtx, cfg.Spec, cfg.Shards); serr == nil {
			break
		}
		if list, lerr := control.Jobs(runCtx); lerr == nil && len(list.Jobs) > 0 {
			id = list.Jobs[0].ID
			logf("submit failed (%v) but job %s is registered; adopting it", serr, id)
			break
		}
		if runCtx.Err() != nil {
			out.Err = fmt.Sprintf("submit: %v", serr)
			return out
		}
		logf("submit failed (%v), no job registered; resubmitting", serr)
		select {
		case <-runCtx.Done():
		case <-time.After(100 * time.Millisecond):
		}
	}

	// Wait out the run, riding through the daemon-restart window:
	// transient status failures retry until the per-seed timeout.
	var finalErr error
	for {
		st, werr := control.Wait(runCtx, id, 50*time.Millisecond)
		if werr == nil {
			break
		}
		if st != nil {
			finalErr = werr // JobFailed: permanent
			break
		}
		if runCtx.Err() != nil {
			finalErr = fmt.Errorf("timed out: %w", werr)
			break
		}
		select {
		case <-runCtx.Done():
		case <-time.After(100 * time.Millisecond):
		}
	}

	// The invariant that must hold no matter how the run went: every
	// acked shard's artifact is valid on the real disk (read via the
	// plain OS filesystem — the verdict must not itself be chaosed).
	ackMu.Lock()
	out.Acked = ackCount
	ackedCopy := make(map[string][]int, len(acked))
	for jobID, shards := range acked {
		for k := range shards {
			ackedCopy[jobID] = append(ackedCopy[jobID], k)
		}
	}
	ackMu.Unlock()
	for jobID, shards := range ackedCopy {
		dir := filepath.Join(spool, "jobs", jobID)
		m, _, merr := sweepfile.LoadManifest(filepath.Join(dir, "manifest.json"))
		if merr != nil {
			out.AckedLost += len(shards)
			logf("acked job %s has no valid manifest: %v", jobID, merr)
			continue
		}
		for _, k := range shards {
			if _, aerr := sweepfile.LoadArtifact(m, dir, k); aerr != nil {
				out.AckedLost++
				logf("acked artifact lost: job %s shard %d: %v", jobID, k, aerr)
			}
		}
	}

	if finalErr != nil {
		out.Err = finalErr.Error()
		return out
	}
	out.Completed = true
	_, doc, err := control.Result(runCtx, id)
	if err != nil {
		out.Completed = false
		out.Err = fmt.Sprintf("result: %v", err)
		return out
	}
	out.ByteIdentical = bytes.Equal(doc, reference)
	if !out.ByteIdentical {
		out.Err = fmt.Sprintf("result diverged from reference: %d bytes vs %d", len(doc), len(reference))
	}
	return out
}
