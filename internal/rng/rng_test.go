package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(12345)
	b := New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical outputs for different seeds", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Errorf("zero-seeded stream produced only %d distinct values", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(777)
	a := parent.Split(1)
	b := parent.Split(2)
	aAgain := parent.Split(1)

	// Same id twice gives the same stream.
	for i := 0; i < 100; i++ {
		if a.Uint64() != aAgain.Uint64() {
			t.Fatal("Split is not deterministic for equal ids")
		}
	}
	// Different ids give different streams.
	a = parent.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical outputs for sibling streams", same)
	}
}

func TestSplitDoesNotPerturbParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split perturbed the parent stream")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := New(6)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntRange(3,5) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Errorf("IntRange(3,5) hit %d values, want 3", len(seen))
	}
	if got := r.IntRange(7, 7); got != 7 {
		t.Errorf("IntRange(7,7) = %d, want 7", got)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		// 5-sigma band for a binomial with p=1/10.
		sigma := math.Sqrt(want * (1 - 1.0/n))
		if math.Abs(float64(c)-want) > 5*sigma {
			t.Errorf("bucket %d: count %d deviates from %f by more than 5 sigma", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	var sum float64
	const trials = 100000
	for i := 0; i < trials; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(11)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) = true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) = false")
	}
	if r.Bernoulli(-0.5) {
		t.Error("Bernoulli(-0.5) = true")
	}
	if !r.Bernoulli(1.5) {
		t.Error("Bernoulli(1.5) = false")
	}
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) empirical rate = %v", p)
	}
}

func TestOneIn(t *testing.T) {
	r := New(13)
	const trials = 80000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.OneIn(8) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.125) > 0.01 {
		t.Errorf("OneIn(8) empirical rate = %v, want ~0.125", p)
	}
	for i := 0; i < 100; i++ {
		if !r.OneIn(1) {
			t.Fatal("OneIn(1) = false")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(21)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("Perm first-element bucket %d: %d, want ~%f", i, c, want)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("Shuffle duplicated %d", v)
		}
		seen[v] = true
	}
}

func TestWeightedChoice(t *testing.T) {
	r := New(41)
	weights := []int64{0, 10, 30, 0, 60}
	const trials = 100000
	counts := make([]int, len(weights))
	for i := 0; i < trials; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Errorf("zero-weight entries chosen: %v", counts)
	}
	for i, w := range weights {
		if w == 0 {
			continue
		}
		want := float64(trials) * float64(w) / 100
		if math.Abs(float64(counts[i])-want)/want > 0.05 {
			t.Errorf("bucket %d: %d, want ~%f", i, counts[i], want)
		}
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	t.Run("all zero", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for all-zero weights")
			}
		}()
		New(1).WeightedChoice([]int64{0, 0})
	})
	t.Run("negative", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for negative weight")
			}
		}()
		New(1).WeightedChoice([]int64{5, -1})
	})
}

func TestSampleK(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%40) + 1
		k := int(kRaw) % (n + 1)
		s := New(seed).SampleK(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSampleKFull(t *testing.T) {
	s := New(1).SampleK(10, 10)
	if len(s) != 10 {
		t.Fatalf("SampleK(10,10) returned %d values", len(s))
	}
}

func TestSampleKUniform(t *testing.T) {
	r := New(55)
	const n, k, trials = 10, 3, 60000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleK(n, k) {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("element %d sampled %d times, want ~%f", i, c, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
