// Package rng provides deterministic, splittable pseudo-random streams.
//
// Every simulated node owns an independent stream derived from a single
// master seed, so whole simulation runs are reproducible from one
// integer while nodes still randomize independently — the model in the
// paper assumes "nodes ... can independently generate random bits".
//
// The generator is xoshiro256★★ seeded via SplitMix64, the standard
// construction recommended by the xoshiro authors. Both are implemented
// here directly (stdlib-only constraint) and are far cheaper than
// math/rand's locked global source.
package rng

import "math/bits"

// Source is a xoshiro256★★ pseudo-random generator.
// It is not safe for concurrent use; give each goroutine its own stream.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed reinitializes the source from seed.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitMix64(sm)
	}
	// xoshiro must not start in the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
}

// Split derives a new independent stream from r, keyed by id.
// Streams produced with distinct ids are statistically independent;
// Split does not perturb r's own state.
func (r *Source) Split(id uint64) *Source {
	// Mix the parent state with the id through SplitMix64 so sibling
	// streams decorrelate even for adjacent ids.
	h := r.s[0] ^ bits.RotateLeft64(r.s[2], 17) ^ (id * 0xD1342543DE82EF95)
	return New(h)
}

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.uint64n(uint64(n)))
}

// IntRange returns a uniform integer in [lo, hi] inclusive.
// It panics if hi < lo.
func (r *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// uint64n returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method.
func (r *Source) uint64n(n uint64) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *Source) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// OneIn returns true with probability 1/n. It panics if n <= 0.
// This mirrors the paper's pseudocode "if random(1, 2^j) == 1".
func (r *Source) OneIn(n int) bool {
	return r.Intn(n) == 0
}

// Perm returns a uniform random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// WeightedChoice returns an index i with probability weights[i]/sum.
// Zero-weight entries are never chosen. It panics if the sum is not
// positive or any weight is negative.
//
// CSEEK part two uses this for density-weighted listener channel
// selection; the linear scan matches the pseudocode in Figure 1 and is
// fast enough for per-slot use at simulator scales (c ≤ a few hundred).
func (r *Source) WeightedChoice(weights []int64) int {
	var sum int64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("rng: WeightedChoice with non-positive total weight")
	}
	target := int64(r.uint64n(uint64(sum)))
	for i, w := range weights {
		if target < w {
			return i
		}
		target -= w
	}
	// Unreachable: target < sum and the loop exhausts sum.
	panic("rng: WeightedChoice fell through")
}

// SampleK returns k distinct uniform values from [0, n) in unspecified
// order. It panics if k > n or k < 0.
func (r *Source) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleK with k outside [0, n]")
	}
	if k == 0 {
		return nil
	}
	// Floyd's algorithm: O(k) expected time, no O(n) allocation.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		v := r.Intn(j + 1)
		if _, dup := chosen[v]; dup {
			v = j
		}
		chosen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

func splitMix64(state uint64) (next, out uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}
