// Package crn is the public entry point of the cognitive-radio-network
// communication-primitives library, a reproduction of "Communication
// Primitives in Cognitive Radio Networks" (Gilbert, Kuhn, Zheng;
// PODC 2017).
//
// The model: n nodes, each with a transceiver that can access c
// channels (different nodes can access different channels, with no
// global channel labels); neighbors share between k and kmax channels;
// time is slotted; a listener hears a message iff exactly one neighbor
// broadcasts on its channel; there is no collision detection.
//
// The package offers the paper's algorithms over generated or custom
// network scenarios:
//
//   - Discover — neighbor discovery with CSEEK (Theorem 4) or the
//     naive / uniform-sweep baselines;
//   - DiscoverK — k̂-neighbor discovery with CKSEEK (Theorem 6);
//   - Broadcast — global broadcast with CGCAST (Theorem 9);
//   - Flood — the naive broadcast baseline.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduction of every claim in the paper.
package crn

import (
	"fmt"

	"crn/internal/chanassign"
	"crn/internal/core"
	"crn/internal/graph"
	"crn/internal/radio"
	"crn/internal/rng"
	"crn/internal/spectrum"
)

// Topology names a built-in network generator.
type Topology string

// Built-in topologies.
const (
	// GNP is an Erdős–Rényi G(n, 0.3) graph conditioned on connectivity.
	GNP Topology = "gnp"
	// Star is a star with node 0 at the center (Δ = n-1).
	Star Topology = "star"
	// Path is a path (D = n-1).
	Path Topology = "path"
	// Grid is a near-square grid.
	Grid Topology = "grid"
	// Chain is a chain of 4-cliques bridged in a line (both Δ and D).
	Chain Topology = "chain"
	// Tree is a complete tree with branching min{c,Δ}-1 (Theorem 14's
	// worst case).
	Tree Topology = "tree"
	// UnitDisk is a random geometric graph in the unit square.
	UnitDisk Topology = "unitdisk"
)

// Algorithm names a neighbor-discovery algorithm.
type Algorithm string

// Discovery algorithms.
const (
	// CSeek is the paper's CSEEK (Theorem 4).
	CSeek Algorithm = "cseek"
	// Naive is the introduction's random-hop baseline, O~((c²/k)·Δ).
	Naive Algorithm = "naive"
	// Uniform is the back-off-sweep baseline without density sampling,
	// matching the Zeng et al. bound O~(c²/k + cΔ/k).
	Uniform Algorithm = "uniform"
)

// ScenarioConfig describes a generated scenario.
type ScenarioConfig struct {
	// Topology selects the graph generator.
	Topology Topology
	// N is the number of nodes.
	N int
	// C is the number of channels per node.
	C int
	// K is the guaranteed number of shared channels per neighbor pair.
	K int
	// KMax, when > K, produces a heterogeneous assignment in which
	// roughly half the edges share KMax channels. Zero means KMax = K.
	KMax int
	// Density is the edge probability for GNP and the radius for
	// UnitDisk; zero picks a sensible default.
	Density float64
	// Seed drives scenario generation.
	Seed uint64
	// Tuning overrides the algorithms' constant multipliers; nil uses
	// defaults.
	Tuning *core.Tuning
}

// Scenario is an instantiated network: topology, channel assignment,
// and derived model parameters.
type Scenario struct {
	g  *graph.Graph
	a  *chanassign.Assignment
	p  core.Params
	nw *radio.Network
	d  int
}

// Jammer models primary-user occupancy: Jammed reports whether the
// given global channel is held by a primary user in the given slot.
// Frames broadcast on occupied channels are lost and listeners tuned
// there hear silence. Implementations must be deterministic functions
// of (slot, channel) and safe for concurrent readers.
type Jammer interface {
	Jammed(slot int64, channel int32) bool
}

// SetPeriodicPrimaryUsers installs duty-cycled primary users: every
// global channel is occupied for onSlots out of every period slots,
// with the phase staggered across channels so some spectrum is always
// free. Pass onSlots = 0 to clear.
func (s *Scenario) SetPeriodicPrimaryUsers(period, onSlots int64) error {
	if onSlots == 0 {
		s.nw.Jammer = nil
		return nil
	}
	stride := period / int64(s.a.Universe)
	if stride < 1 {
		stride = 1
	}
	j, err := spectrum.NewPeriodic(period, onSlots, stride, nil)
	if err != nil {
		return fmt.Errorf("crn: %w", err)
	}
	s.nw.Jammer = j
	return nil
}

// SetMarkovPrimaryUsers installs bursty primary users: each global
// channel flips between idle and occupied with the given per-slot
// transition probabilities (idle→busy pBusy, busy→idle pFree), over a
// precomputed horizon of `horizon` slots (0 picks a horizon generous
// enough for a CSEEK run).
func (s *Scenario) SetMarkovPrimaryUsers(pBusy, pFree float64, horizon int64, seed uint64) error {
	if horizon == 0 {
		probe, err := core.NewCSeek(s.p, core.Env{ID: 0, C: s.p.C, Rand: rng.New(1)})
		if err != nil {
			return fmt.Errorf("crn: %w", err)
		}
		horizon = 2 * probe.TotalSlots()
	}
	j, err := spectrum.NewMarkov(s.a.Universe, horizon, pBusy, pFree, seed)
	if err != nil {
		return fmt.Errorf("crn: %w", err)
	}
	s.nw.Jammer = j
	return nil
}

// SetJammer installs a custom primary-user model (nil to clear).
func (s *Scenario) SetJammer(j Jammer) {
	if j == nil {
		s.nw.Jammer = nil
		return
	}
	s.nw.Jammer = j
}

// Universe returns the number of global channels in the scenario.
func (s *Scenario) Universe() int { return s.a.Universe }

// NewScenario generates a scenario from config.
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("crn: need at least 2 nodes, got %d", cfg.N)
	}
	if cfg.C < 1 {
		return nil, fmt.Errorf("crn: need at least 1 channel, got %d", cfg.C)
	}
	if cfg.K < 1 || cfg.K > cfg.C {
		return nil, fmt.Errorf("crn: k must be in [1,c] = [1,%d], got %d", cfg.C, cfg.K)
	}
	kmax := cfg.KMax
	if kmax == 0 {
		kmax = cfg.K
	}
	if kmax < cfg.K || kmax > cfg.C {
		return nil, fmt.Errorf("crn: kmax must be in [k,c] = [%d,%d], got %d", cfg.K, cfg.C, kmax)
	}
	r := rng.New(cfg.Seed)

	g, err := buildTopology(cfg, r)
	if err != nil {
		return nil, err
	}
	var a *chanassign.Assignment
	if kmax == cfg.K {
		a, err = chanassign.SharedCore(g.N(), cfg.C, cfg.K, r)
	} else {
		a, err = chanassign.Heterogeneous(g, cfg.C, cfg.K, kmax, 0.5, r)
	}
	if err != nil {
		return nil, err
	}
	return newScenario(g, a, cfg.Tuning)
}

// CustomConfig describes an explicit scenario: an edge list plus
// per-node global channel sets. The caller is responsible for making
// every adjacent pair share at least one channel; NewCustomScenario
// verifies it.
type CustomConfig struct {
	// N is the number of nodes.
	N int
	// Edges lists undirected edges between nodes in [0, N).
	Edges [][2]int
	// Universe is the number of global channels.
	Universe int
	// Channels[u] lists node u's global channels; all nodes must have
	// the same count (the model's per-transceiver channel budget c).
	Channels [][]int
	// Seed drives the local channel labeling and the algorithms.
	Seed uint64
	// Tuning overrides constant multipliers; nil uses defaults.
	Tuning *core.Tuning
}

// NewCustomScenario builds a scenario from explicit topology and
// channel sets.
func NewCustomScenario(cfg CustomConfig) (*Scenario, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("crn: need at least 2 nodes, got %d", cfg.N)
	}
	if len(cfg.Channels) != cfg.N {
		return nil, fmt.Errorf("crn: %d channel sets for %d nodes", len(cfg.Channels), cfg.N)
	}
	g := graph.New(cfg.N)
	for _, e := range cfg.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("crn: %w", err)
		}
	}
	g.Finalize()
	if !g.Connected() {
		return nil, fmt.Errorf("crn: custom topology is not connected")
	}
	a, err := chanassign.FromSets(cfg.Universe, cfg.Channels, rng.New(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("crn: %w", err)
	}
	kMin, _ := a.OverlapRange(g)
	if kMin < 1 {
		return nil, fmt.Errorf("crn: some adjacent pair shares no channels")
	}
	return newScenario(g, a, cfg.Tuning)
}

func newScenario(g *graph.Graph, a *chanassign.Assignment, tuning *core.Tuning) (*Scenario, error) {
	k, kmax := a.OverlapRange(g)
	p := core.Params{N: g.N(), C: a.C, K: k, KMax: kmax, Delta: g.MaxDegree()}
	if tuning != nil {
		p.Tuning = *tuning
	}
	if err := p.Normalize(); err != nil {
		return nil, fmt.Errorf("crn: %w", err)
	}
	d := g.Diameter()
	if d < 1 {
		d = 1
	}
	return &Scenario{g: g, a: a, p: p, nw: &radio.Network{Graph: g, Assign: a}, d: d}, nil
}

func buildTopology(cfg ScenarioConfig, r *rng.Source) (*graph.Graph, error) {
	switch cfg.Topology {
	case GNP, "":
		p := cfg.Density
		if p == 0 {
			p = 0.3
		}
		return graph.GNP(cfg.N, p, r)
	case Star:
		return graph.Star(cfg.N), nil
	case Path:
		return graph.Path(cfg.N), nil
	case Grid:
		rows := 1
		for (rows+1)*(rows+1) <= cfg.N {
			rows++
		}
		cols := (cfg.N + rows - 1) / rows
		return graph.Grid(rows, cols)
	case Chain:
		const clusterSize = 4
		clusters := cfg.N / clusterSize
		if clusters < 1 {
			clusters = 1
		}
		return graph.ClusterChain(clusters, clusterSize)
	case Tree:
		branching := cfg.C - 1
		if branching < 1 {
			branching = 1
		}
		// Smallest height whose complete tree reaches N nodes.
		height, count, level := 0, 1, 1
		for count < cfg.N && height < 20 {
			level *= branching
			count += level
			height++
		}
		return graph.CompleteTree(branching, height)
	case UnitDisk:
		radius := cfg.Density
		if radius == 0 {
			radius = 0.35
		}
		return graph.UnitDisk(cfg.N, radius, r)
	default:
		return nil, fmt.Errorf("crn: unknown topology %q", cfg.Topology)
	}
}

// N returns the number of nodes.
func (s *Scenario) N() int { return s.g.N() }

// C returns the per-node channel count.
func (s *Scenario) C() int { return s.p.C }

// K returns the realized minimum neighbor overlap.
func (s *Scenario) K() int { return s.p.K }

// KMax returns the realized maximum neighbor overlap.
func (s *Scenario) KMax() int { return s.p.KMax }

// Delta returns the maximum degree Δ.
func (s *Scenario) Delta() int { return s.p.Delta }

// Diameter returns the network diameter D.
func (s *Scenario) Diameter() int { return s.d }

// Edges returns the topology's edge list.
func (s *Scenario) Edges() [][2]int {
	out := make([][2]int, 0, s.g.M())
	for _, e := range s.g.Edges() {
		out = append(out, [2]int{int(e.U), int(e.V)})
	}
	return out
}

// SharedChannelCount returns how many channels nodes u and v share.
func (s *Scenario) SharedChannelCount(u, v int) int { return s.a.SharedCount(u, v) }

// String describes the scenario.
func (s *Scenario) String() string {
	return fmt.Sprintf("n=%d c=%d k=%d kmax=%d Δ=%d D=%d edges=%d",
		s.N(), s.C(), s.K(), s.KMax(), s.Delta(), s.Diameter(), s.g.M())
}

// DiscoveryResult reports one neighbor-discovery run.
type DiscoveryResult struct {
	// Algorithm is the algorithm that ran.
	Algorithm string `json:"algorithm"`
	// ScheduleSlots is the protocol's fixed schedule length.
	ScheduleSlots int64 `json:"scheduleSlots"`
	// CompletedAtSlot is the slot by which every node knew all its
	// neighbors, or -1 if the schedule ended first.
	CompletedAtSlot int64 `json:"completedAtSlot"`
	// PairsDiscovered counts directed (node, neighbor) discoveries.
	PairsDiscovered int `json:"pairsDiscovered"`
	// PairsTotal is the number of directed neighbor pairs.
	PairsTotal int `json:"pairsTotal"`
	// Neighbors[u] lists the identities node u discovered.
	Neighbors [][]int `json:"neighbors"`
}

// AllDiscovered reports whether every node found every neighbor.
func (r *DiscoveryResult) AllDiscovered() bool { return r.PairsDiscovered == r.PairsTotal }

// Discover runs a neighbor-discovery algorithm on the scenario.
func (s *Scenario) Discover(algo Algorithm, seed uint64) (*DiscoveryResult, error) {
	mk := func(env core.Env) (core.Discoverer, error) {
		switch algo {
		case CSeek, "":
			return core.NewCSeek(s.p, env)
		case Naive:
			return core.NewNaiveSeek(s.p, env)
		case Uniform:
			return core.NewUniformSeek(s.p, env)
		default:
			return nil, fmt.Errorf("crn: unknown algorithm %q", algo)
		}
	}
	name := string(algo)
	if name == "" {
		name = string(CSeek)
	}
	return s.runDiscovery(name, mk, seed)
}

// DiscoverK runs CKSEEK: every node finds (at least) all neighbors
// sharing at least khat channels with it. The result counts only those
// "good" pairs.
func (s *Scenario) DiscoverK(khat int, seed uint64) (*DiscoveryResult, error) {
	if khat < s.p.K || khat > s.p.KMax {
		return nil, fmt.Errorf("crn: k̂ must be in [k,kmax] = [%d,%d], got %d", s.p.K, s.p.KMax, khat)
	}
	deltaKhat := 0
	for u := 0; u < s.g.N(); u++ {
		good := 0
		for _, v := range s.g.Neighbors(u) {
			if s.a.SharedCount(u, int(v)) >= khat {
				good++
			}
		}
		if good > deltaKhat {
			deltaKhat = good
		}
	}
	mk := func(env core.Env) (core.Discoverer, error) {
		return core.NewCKSeek(s.p, env, khat, deltaKhat)
	}
	res, err := s.runDiscovery("ckseek", mk, seed)
	if err != nil {
		return nil, err
	}
	// Recount against the good-pair universe.
	res.PairsTotal = 0
	res.PairsDiscovered = 0
	for u := 0; u < s.g.N(); u++ {
		seen := make(map[int]bool, len(res.Neighbors[u]))
		for _, v := range res.Neighbors[u] {
			seen[v] = true
		}
		for _, v := range s.g.Neighbors(u) {
			if s.a.SharedCount(u, int(v)) >= khat {
				res.PairsTotal++
				if seen[int(v)] {
					res.PairsDiscovered++
				}
			}
		}
	}
	return res, nil
}

func (s *Scenario) runDiscovery(name string, mk func(core.Env) (core.Discoverer, error), seed uint64) (*DiscoveryResult, error) {
	n := s.g.N()
	master := rng.New(seed)
	ds := make([]core.Discoverer, n)
	protos := make([]radio.Protocol, n)
	for u := 0; u < n; u++ {
		d, err := mk(core.Env{ID: radio.NodeID(u), C: s.p.C, Rand: master.Split(uint64(u))})
		if err != nil {
			return nil, err
		}
		ds[u] = d
		protos[u] = d
	}
	e, err := radio.NewEngine(s.nw, protos)
	if err != nil {
		return nil, err
	}
	completedAt := int64(-1)
	e.RunUntil(ds[0].TotalSlots()+1, func(slot int64) bool {
		for u := 0; u < n; u++ {
			if ds[u].DiscoveredCount() < s.g.Degree(u) {
				return false
			}
		}
		completedAt = slot
		return true
	})

	res := &DiscoveryResult{
		Algorithm:       name,
		ScheduleSlots:   ds[0].TotalSlots(),
		CompletedAtSlot: completedAt,
		Neighbors:       make([][]int, n),
	}
	for u := 0; u < n; u++ {
		res.PairsTotal += s.g.Degree(u)
		found := make(map[radio.NodeID]bool)
		for _, id := range ds[u].Discovered() {
			found[id] = true
			res.Neighbors[u] = append(res.Neighbors[u], int(id))
		}
		for _, v := range s.g.Neighbors(u) {
			if found[radio.NodeID(v)] {
				res.PairsDiscovered++
			}
		}
	}
	return res, nil
}

// BroadcastResult reports one CGCAST run.
type BroadcastResult struct {
	// TotalSlots is setup plus the full dissemination schedule.
	TotalSlots int64 `json:"totalSlots"`
	// SetupSlots covers discovery, channel fixing, coloring, announce.
	SetupSlots int64 `json:"setupSlots"`
	// DissemScheduleSlots is the dissemination stage's fixed length.
	DissemScheduleSlots int64 `json:"dissemScheduleSlots"`
	// AllInformedAtSlot is the dissemination slot after which every
	// node held the message (-1 if some node finished uninformed).
	AllInformedAtSlot int64 `json:"allInformedAtSlot"`
	// AllInformed reports whether every node got the message.
	AllInformed bool `json:"allInformed"`
	// EdgesColored / EdgesDropped describe the realized edge coloring.
	EdgesColored int `json:"edgesColored"`
	EdgesDropped int `json:"edgesDropped"`
	// ColoringValid reports properness of the realized coloring.
	ColoringValid bool `json:"coloringValid"`
}

// BroadcastOption configures Broadcast.
type BroadcastOption func(*broadcastOptions)

type broadcastOptions struct {
	mode core.BroadcastMode
}

// WithFullFidelity makes CGCAST simulate every CSEEK exchange in the
// radio model instead of using the slot-equivalent oracle. Slower, but
// end-to-end faithful; see DESIGN.md.
func WithFullFidelity() BroadcastOption {
	return func(o *broadcastOptions) { o.mode = core.ExchangeFull }
}

// Broadcast runs CGCAST from the given source node.
func (s *Scenario) Broadcast(source int, message any, seed uint64, opts ...BroadcastOption) (*BroadcastResult, error) {
	o := broadcastOptions{mode: core.ExchangeAbstract}
	for _, opt := range opts {
		opt(&o)
	}
	res, err := core.RunCGCast(s.nw, core.BroadcastConfig{
		Params:  s.p,
		D:       s.d,
		Source:  radio.NodeID(source),
		Message: message,
		Mode:    o.mode,
		Seed:    seed,
	})
	if err != nil {
		return nil, err
	}
	all := true
	for _, inf := range res.Informed {
		if !inf {
			all = false
			break
		}
	}
	return &BroadcastResult{
		TotalSlots:          res.TotalSlots,
		SetupSlots:          res.SetupSlots,
		DissemScheduleSlots: res.DissemScheduleSlots,
		AllInformedAtSlot:   res.AllInformedAt,
		AllInformed:         all,
		EdgesColored:        res.EdgesColored,
		EdgesDropped:        res.EdgesDropped,
		ColoringValid:       res.ColoringValid,
	}, nil
}

// BroadcastSession is CGCAST's reusable setup: after one round of
// discovery, dedicated-channel fixing and edge coloring, any number of
// messages can be disseminated from any source, each costing only the
// O~(D·Δ) dissemination schedule. This is where CGCAST's one-time
// setup amortizes against per-broadcast flooding.
type BroadcastSession struct {
	s       *Scenario
	session *core.BroadcastSession
}

// NewBroadcastSession runs CGCAST's setup stages once and returns the
// reusable session.
func (s *Scenario) NewBroadcastSession(seed uint64, opts ...BroadcastOption) (*BroadcastSession, error) {
	o := broadcastOptions{mode: core.ExchangeAbstract}
	for _, opt := range opts {
		opt(&o)
	}
	session, err := core.PrepareCGCast(s.nw, core.SessionConfig{
		Params: s.p,
		Mode:   o.mode,
		Seed:   seed,
	})
	if err != nil {
		return nil, err
	}
	return &BroadcastSession{s: s, session: session}, nil
}

// SetupSlots returns the one-time setup cost in slots.
func (bs *BroadcastSession) SetupSlots() int64 { return bs.session.SetupSlots() }

// EdgesColored returns the number of schedulable (colored) edges.
func (bs *BroadcastSession) EdgesColored() int { return bs.session.EdgesColored() }

// SessionBroadcastResult reports one dissemination over a session.
type SessionBroadcastResult struct {
	// ScheduleSlots is the fixed dissemination length.
	ScheduleSlots int64 `json:"scheduleSlots"`
	// AllInformedAtSlot is when the last node got the message, or -1.
	AllInformedAtSlot int64 `json:"allInformedAtSlot"`
	// AllInformed reports whether every node got the message.
	AllInformed bool `json:"allInformed"`
}

// Broadcast disseminates one message from source over the prepared
// schedule.
func (bs *BroadcastSession) Broadcast(source int, message any, seed uint64) (*SessionBroadcastResult, error) {
	return bs.disseminate(bs.s.d, source, message, seed)
}

// LocalBroadcast delivers a message from source to its immediate
// neighbors only: a single phase of the dissemination schedule, the
// local-broadcast primitive the global algorithm repeats D times.
// In the result, AllInformed refers to the source's neighborhood;
// AllInformedAtSlot stays -1 unless the single phase happened to reach
// the whole network (it tracks the global predicate).
func (bs *BroadcastSession) LocalBroadcast(source int, message any, seed uint64) (*SessionBroadcastResult, error) {
	res, err := bs.session.Disseminate(1, radio.NodeID(source), message, seed)
	if err != nil {
		return nil, err
	}
	all := true
	for _, v := range bs.s.g.Neighbors(source) {
		if !res.Informed[v] {
			all = false
			break
		}
	}
	return &SessionBroadcastResult{
		ScheduleSlots:     res.ScheduleSlots,
		AllInformedAtSlot: res.AllInformedAt,
		AllInformed:       all,
	}, nil
}

func (bs *BroadcastSession) disseminate(d, source int, message any, seed uint64) (*SessionBroadcastResult, error) {
	res, err := bs.session.Disseminate(d, radio.NodeID(source), message, seed)
	if err != nil {
		return nil, err
	}
	all := true
	for _, inf := range res.Informed {
		if !inf {
			all = false
			break
		}
	}
	return &SessionBroadcastResult{
		ScheduleSlots:     res.ScheduleSlots,
		AllInformedAtSlot: res.AllInformedAt,
		AllInformed:       all,
	}, nil
}

// FloodResult reports one flooding-baseline run.
type FloodResult struct {
	// AllInformedAtSlot is the slot after which every node held the
	// message, or -1 if the budget ran out first.
	AllInformedAtSlot int64 `json:"allInformedAtSlot"`
	// AllInformed reports whether every node got the message.
	AllInformed bool `json:"allInformed"`
}

// Flood runs the naive flooding broadcast baseline.
func (s *Scenario) Flood(source int, message any, seed uint64) (*FloodResult, error) {
	at, all, err := core.RunFlood(s.nw, s.p, s.d, radio.NodeID(source), message, seed)
	if err != nil {
		return nil, err
	}
	return &FloodResult{AllInformedAtSlot: at, AllInformed: all}, nil
}
