// Multihop: CGCAST global broadcast across a chain of dense clusters,
// compared against naive flooding — the Theorem 9 trade-off.
//
// CGCAST pays a one-time setup (neighbor discovery, dedicated channel
// fixing, edge coloring) and then disseminates any number of messages
// on a deterministic schedule costing O~(D·Δ) each; flooding pays a
// fresh O~(c²/k) rendezvous for every hop of every message. The
// BroadcastSession API makes the reuse explicit; the one-shot path is
// the GlobalBroadcast primitive.
//
//	go run ./examples/multihop
package main

import (
	"context"
	"fmt"
	"log"

	"crn"
)

func main() {
	scenario, err := crn.New(
		crn.WithTopology(crn.Chain), // clusters of 4 bridged in a line
		crn.WithNodes(32),
		crn.WithChannels(16, 1, 0),
		crn.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scenario:", scenario)

	// Pay CGCAST's setup once...
	session, err := scenario.NewBroadcastSession(11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CGCAST setup: %d slots, %d edges colored (paid once)\n\n",
		session.SetupSlots(), session.EdgesColored())

	// ...then broadcast repeatedly, from different sources, on the
	// same schedule.
	var perMsg int64
	for i, source := range []int{0, 31, 16} {
		res, err := session.Broadcast(source, fmt.Sprintf("msg-%d", i), uint64(20+i))
		if err != nil {
			log.Fatal(err)
		}
		perMsg = res.ScheduleSlots
		fmt.Printf("  broadcast from node %2d: informed everyone at slot %4d of %d\n",
			source, res.AllInformedAtSlot, res.ScheduleSlots)
	}

	fl, err := crn.Flooding(0, "msg").Run(context.Background(), scenario, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflooding baseline: %d slots — and every message pays it again\n",
		fl.CompletedAtSlot)

	if fl.CompletedAtSlot > perMsg {
		breakEven := session.SetupSlots()/(fl.CompletedAtSlot-perMsg) + 1
		fmt.Printf("CGCAST's schedule is %.1fx faster per message; setup amortizes after ~%d messages\n",
			float64(fl.CompletedAtSlot)/float64(perMsg), breakEven)
	}
}
