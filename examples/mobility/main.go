// Mobility: neighbor discovery while the topology shifts underneath
// the protocol — nodes wandering by random waypoint, dropping out and
// rejoining, links flapping. The paper's analysis assumes a frozen
// graph; this example measures the degradation when that assumption
// breaks, and shows the re-discovery accounting: how long a rejoining
// neighbor takes to be found again.
//
// Each regime is its own immutable scenario from the same generation
// seed plus topology-dynamics options — exactly the shape a crn.Sweep
// over dynamics models takes (the mobile-sparse and churn-heavy
// presets package two of these regimes).
//
//	go run ./examples/mobility
package main

import (
	"context"
	"fmt"
	"log"

	"crn"
)

func main() {
	// A unit-disk network: the only topology carrying the point
	// geometry mobility needs.
	base := []crn.ScenarioOption{
		crn.WithTopology(crn.UnitDisk),
		crn.WithNodes(20),
		crn.WithChannels(5, 2, 0),
		crn.WithDensity(0.4), // transmission radius
		crn.WithSeed(8),
	}
	regimes := []struct {
		name string
		opts []crn.ScenarioOption
	}{
		{name: "static", opts: nil},
		// Slow drift: edge set refreshed every 4 slots from positions
		// moving at 0.002 per slot.
		{name: "slow drift", opts: []crn.ScenarioOption{crn.WithMobility(0.002, 4, 21)}},
		// Fast motion: neighborhoods turn over within a CSEEK part.
		{name: "fast motion", opts: []crn.ScenarioOption{crn.WithMobility(0.01, 4, 21)}},
		// Churn without motion: nodes down ~4% of the time, rejoining
		// after 20 slots on average.
		{name: "churn", opts: []crn.ScenarioOption{crn.WithChurn(0.002, 0.05, 22)}},
		// Dynamics options stack, like the spectrum options: motion
		// plus churn plus link flapping in one scenario.
		{name: "drift+churn+flap", opts: []crn.ScenarioOption{
			crn.WithMobility(0.002, 4, 21),
			crn.WithChurn(0.002, 0.05, 22),
			crn.WithEdgeFlap(0.005, 0.1, 23),
		}},
	}

	ctx := context.Background()
	for i, regime := range regimes {
		scenario, err := crn.New(append(append([]crn.ScenarioOption{}, base...), regime.opts...)...)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			fmt.Println("scenario:", scenario)
		}
		res, err := crn.Discovery(crn.CSeek).Run(ctx, scenario, 40)
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("%-17s %3d/%3d pairs", regime.name+":",
			res.Discovery.PairsDiscovered, res.Discovery.PairsTotal)
		if top := res.Topology; top != nil {
			line += fmt.Sprintf(", edges ±%d/%d, down-slots %d, partition losses %d",
				top.EdgeAdds, top.EdgeRemoves, top.DownNodeSlots, top.PartitionLosses)
			if top.RediscoveredPairs > 0 {
				line += fmt.Sprintf(", %d re-discovered (mean %.0f slots after rejoin)",
					top.RediscoveredPairs, top.MeanRediscoveryLatency())
			}
		}
		fmt.Println(line)
	}

	fmt.Println("\nDiscovery degrades gracefully: pairs whose edge survives are still")
	fmt.Println("found, losses concentrate where the topology moved, and rejoining")
	fmt.Println("neighbors are re-discovered at CSEEK's usual pace.")
}
