// Quickstart: generate a small cognitive radio network and run CSEEK
// neighbor discovery on it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"crn"
)

func main() {
	// A 12-node random network. Every node's radio can access 5
	// channels; every pair of neighbors is guaranteed to share at
	// least 2 (the k of the model), and there is no global channel
	// numbering — each node labels its own channels 0..4.
	scenario, err := crn.NewScenario(crn.ScenarioConfig{
		Topology: crn.GNP,
		N:        12,
		C:        5,
		K:        2,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scenario:", scenario)

	// Run CSEEK (Theorem 4): O~((c²/k) + (kmax/k)·Δ) slots.
	res, err := scenario.Discover(crn.CSeek, 99)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("schedule: %d slots, discovery complete at slot %d\n",
		res.ScheduleSlots, res.CompletedAtSlot)
	fmt.Printf("pairs:    %d/%d discovered\n", res.PairsDiscovered, res.PairsTotal)
	for u, nbrs := range res.Neighbors {
		sort.Ints(nbrs)
		fmt.Printf("  node %2d heard %v\n", u, nbrs)
	}
}
