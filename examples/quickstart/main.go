// Quickstart: generate a small cognitive radio network, run CSEEK
// neighbor discovery through the Primitive API, then fan the same
// primitive out over many seeds with the sweep engine.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"crn"
)

func main() {
	// A 12-node random network. Every node's radio can access 5
	// channels; every pair of neighbors is guaranteed to share at
	// least 2 (the k of the model), and there is no global channel
	// numbering — each node labels its own channels 0..4.
	scenario, err := crn.New(
		crn.WithTopology(crn.GNP),
		crn.WithNodes(12),
		crn.WithChannels(5, 2, 0),
		crn.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scenario:", scenario)

	// Run CSEEK (Theorem 4): O~((c²/k) + (kmax/k)·Δ) slots. Every
	// algorithm is a crn.Primitive returning the same Result envelope.
	ctx := context.Background()
	res, err := crn.Discovery(crn.CSeek).Run(ctx, scenario, 99)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("schedule: %d slots, discovery complete at slot %d\n",
		res.ScheduleSlots, res.CompletedAtSlot)
	fmt.Printf("pairs:    %d/%d discovered\n",
		res.Discovery.PairsDiscovered, res.Discovery.PairsTotal)
	for u, nbrs := range res.Discovery.Neighbors {
		sorted := append([]int(nil), nbrs...)
		sort.Ints(sorted)
		fmt.Printf("  node %2d heard %v\n", u, sorted)
	}

	// One run is an anecdote. Sweep the primitive over 16 seeds on a
	// bounded worker pool; the aggregate is deterministic regardless of
	// the worker count.
	sweep, err := crn.Sweep(ctx, crn.SweepSpec{
		Primitive: crn.Discovery(crn.CSeek),
		Variants:  []crn.Variant{{Name: "gnp-12", Scenario: scenario}},
		Seeds:     16,
		BaseSeed:  99,
		Workers:   4,
	})
	if err != nil {
		log.Fatal(err)
	}
	agg := sweep.Aggregates[0]
	tt := agg.Metrics["timeToComplete"]
	fmt.Printf("\nsweep:    %d runs, %d completed; time-to-complete mean %.1f ± %.1f (median %.0f)\n",
		agg.Runs, agg.Completed, tt.Mean, tt.StdDev, tt.Median)
}
