// Primaryuser: neighbor discovery while licensed primary users cycle
// on and off the spectrum — the scenario cognitive radios are built
// for. Shows the E13 finding interactively: jamming bursts much
// shorter than a CSEEK step are absorbed by the protocol's internal
// redundancy.
//
//	go run ./examples/primaryuser
package main

import (
	"fmt"
	"log"

	"crn"
)

func main() {
	scenario, err := crn.NewScenario(crn.ScenarioConfig{
		Topology: crn.GNP,
		N:        14,
		C:        5,
		K:        2,
		Seed:     8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scenario:", scenario)

	// Clear spectrum first.
	clear, err := scenario.Discover(crn.CSeek, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clear spectrum:   %3d/%3d pairs, complete at slot %d\n",
		clear.PairsDiscovered, clear.PairsTotal, clear.CompletedAtSlot)

	// Duty-cycled primary users: every channel occupied 40% of the
	// time in 40-slot cycles (fast bursts).
	if err := scenario.SetPeriodicPrimaryUsers(40, 16); err != nil {
		log.Fatal(err)
	}
	fast, err := scenario.Discover(crn.CSeek, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("40%% fast bursts:  %3d/%3d pairs, complete at slot %d\n",
		fast.PairsDiscovered, fast.PairsTotal, fast.CompletedAtSlot)

	// Bursty Markov primary users (occupancy ≈ 1/6).
	if err := scenario.SetMarkovPrimaryUsers(0.01, 0.05, 0, 77); err != nil {
		log.Fatal(err)
	}
	markov, err := scenario.Discover(crn.CSeek, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Markov bursts:    %3d/%3d pairs, complete at slot %d\n",
		markov.PairsDiscovered, markov.PairsTotal, markov.CompletedAtSlot)

	fmt.Println("\nCSEEK assumes nothing about spectrum beyond the k shared channels,")
	fmt.Println("so primary-user activity slows it down instead of breaking it.")
}
