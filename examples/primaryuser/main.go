// Primaryuser: neighbor discovery while licensed primary users cycle
// on and off the spectrum — the scenario cognitive radios are built
// for. Shows the E13 finding interactively: jamming bursts much
// shorter than a CSEEK step are absorbed by the protocol's internal
// redundancy.
//
// Each spectrum regime is its own immutable scenario, built from the
// same generation seed plus a primary-user option — the shape a
// crn.Sweep over spectrum models takes.
//
//	go run ./examples/primaryuser
package main

import (
	"context"
	"fmt"
	"log"

	"crn"
)

func main() {
	base := []crn.ScenarioOption{
		crn.WithTopology(crn.GNP),
		crn.WithNodes(14),
		crn.WithChannels(5, 2, 0),
		crn.WithSeed(8),
	}
	regimes := []struct {
		name string
		opts []crn.ScenarioOption
	}{
		{name: "clear spectrum", opts: nil},
		// Duty-cycled primary users: every channel occupied 40% of the
		// time in 40-slot cycles (fast bursts).
		{name: "40% fast bursts", opts: []crn.ScenarioOption{crn.WithPeriodicPrimaryUsers(40, 16)}},
		// Bursty Markov primary users (occupancy ≈ 1/6).
		{name: "Markov bursts", opts: []crn.ScenarioOption{crn.WithMarkovPrimaryUsers(0.01, 0.05, 0, 77)}},
		// Poisson arrivals with long geometric holds: rarer, heavier
		// outages at a similar mean occupancy.
		{name: "Poisson holds", opts: []crn.ScenarioOption{crn.WithPoissonPrimaryUsers(0.008, 25, 0, 77)}},
		// Spectrum options stack: Markov primary traffic plus the
		// paper's t-bounded reactive adversary (t = 1 channel/slot).
		{name: "Markov+adversary", opts: []crn.ScenarioOption{
			crn.WithMarkovPrimaryUsers(0.01, 0.05, 0, 77),
			crn.WithAdversary(1),
		}},
	}
	// The same regimes are available pre-packaged: crn.Presets() names
	// quiet / urban-busy / bursty / adversarial-t bundles, and
	// `crnsim -preset urban-busy` runs them from the CLI.

	ctx := context.Background()
	for i, regime := range regimes {
		scenario, err := crn.New(append(append([]crn.ScenarioOption{}, base...), regime.opts...)...)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			fmt.Println("scenario:", scenario)
		}
		res, err := crn.Discovery(crn.CSeek).Run(ctx, scenario, 40)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-17s %3d/%3d pairs, complete at slot %d, jammed listens %d\n", regime.name+":",
			res.Discovery.PairsDiscovered, res.Discovery.PairsTotal, res.CompletedAtSlot,
			res.Spectrum.JammedListens)
	}

	fmt.Println("\nCSEEK assumes nothing about spectrum beyond the k shared channels,")
	fmt.Println("so primary-user activity slows it down instead of breaking it.")
}
