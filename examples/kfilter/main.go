// Kfilter: CKSEEK as a "well-connected neighbor" filter (Theorem 6).
//
// In real deployments a node often only cares about neighbors it
// shares many channels with — they offer more robust links. CKSEEK
// finds all neighbors sharing at least k̂ channels on a schedule that
// *shrinks* as k̂ grows, strictly faster than full CSEEK discovery.
//
//	go run ./examples/kfilter
package main

import (
	"context"
	"fmt"
	"log"

	"crn"
)

func main() {
	// Heterogeneous overlaps: some neighbor pairs share 2 channels,
	// some share 6.
	scenario, err := crn.New(
		crn.WithTopology(crn.GNP),
		crn.WithNodes(16),
		crn.WithChannels(10, 2, 6),
		crn.WithSeed(17),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scenario:", scenario)

	ctx := context.Background()

	// Full discovery first, for reference.
	full, err := crn.Discovery(crn.CSeek).Run(ctx, scenario, 23)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CSEEK  (all neighbors):  schedule %8d slots, %3d/%3d pairs\n",
		full.ScheduleSlots, full.Discovery.PairsDiscovered, full.Discovery.PairsTotal)

	// Now filter: only neighbors sharing at least k̂ channels.
	for _, khat := range []int{4, 6} {
		res, err := crn.KDiscovery(khat).Run(ctx, scenario, 29)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("CKSEEK (k̂ = %d):          schedule %8d slots, %3d/%3d good pairs\n",
			khat, res.ScheduleSlots, res.Discovery.PairsDiscovered, res.Discovery.PairsTotal)
	}
	fmt.Println("\nthe schedule column shrinks as k̂ grows — Theorem 6's promise")
}
