// Whitespace: a TV-whitespace-style scenario built with the custom
// scenario API — the motivating use case from the paper's introduction,
// where the general public uses idle spectrum in licensed bands and
// different locations see different primary users.
//
// Eight nodes sit in two towns connected by a highway link. A TV
// broadcaster (a "primary user") occupies channels 0-2 in the west
// town and channels 5-7 in the east town, so western nodes may only
// use channels 3-9 and eastern nodes only 0-4 and 8-9. Every node gets
// exactly 7 usable channels; cross-town neighbors overlap on fewer
// channels than same-town neighbors — exactly the heterogeneous
// overlap pattern cognitive radio networks are about.
//
//	go run ./examples/whitespace
package main

import (
	"context"
	"fmt"
	"log"

	"crn"
)

func main() {
	west := []int{3, 4, 5, 6, 7, 8, 9} // channels free of the west-town primary
	east := []int{0, 1, 2, 3, 4, 8, 9} // channels free of the east-town primary

	channels := [][]int{
		west, west, west, west, // nodes 0-3: west town
		east, east, east, east, // nodes 4-7: east town
	}
	edges := [][2]int{
		// West town (clique).
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		// East town (clique).
		{4, 5}, {4, 6}, {4, 7}, {5, 6}, {5, 7}, {6, 7},
		// The highway link.
		{3, 4},
	}

	scenario, err := crn.NewCustomScenario(crn.CustomConfig{
		N:        8,
		Edges:    edges,
		Universe: 10,
		Channels: channels,
		Seed:     21,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("scenario:", scenario)
	fmt.Printf("same-town overlap:  %d channels\n", scenario.SharedChannelCount(0, 1))
	fmt.Printf("cross-town overlap: %d channels (the whitespace both towns share)\n",
		scenario.SharedChannelCount(3, 4))

	ctx := context.Background()

	// Discover neighbors despite the asymmetric spectrum.
	disc, err := crn.Discovery(crn.CSeek).Run(ctx, scenario, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovery: %d/%d pairs at slot %d\n",
		disc.Discovery.PairsDiscovered, disc.Discovery.PairsTotal, disc.CompletedAtSlot)

	// Broadcast an announcement from the west town across the link.
	bc, err := crn.GlobalBroadcast(0, "emergency broadcast").Run(ctx, scenario, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcast: all informed = %v (dissemination slot %d of %d)\n",
		bc.Completed, bc.CompletedAtSlot, bc.Broadcast.DissemScheduleSlots)
	fmt.Printf("coloring:  %d edges colored, valid = %v\n",
		bc.Broadcast.EdgesColored, bc.Broadcast.ColoringValid)
}
