package crn

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"crn/internal/rng"
	"crn/internal/stats"
)

// Summary is the per-metric aggregate the sweep engine reports:
// mean, standard deviation, median and quartiles of one metric across
// the runs of one variant.
type Summary = stats.Summary

// Variant names one scenario configuration inside a sweep. Exactly one
// of Scenario (a prebuilt scenario, shared read-only by the workers)
// or Options (applied once when the sweep starts) must be set.
type Variant struct {
	// Name labels the variant in aggregates; empty defaults to
	// "variant-<index>".
	Name string
	// Scenario is a prebuilt scenario to run on.
	Scenario *Scenario
	// Options generate the scenario at sweep start when Scenario is nil.
	Options []ScenarioOption
}

// SweepSpec describes a sweep: one primitive fanned out over
// Seeds × len(Variants) runs.
type SweepSpec struct {
	// Primitive is the primitive every run executes.
	Primitive Primitive
	// Variants are the scenario configurations to sweep over; at least
	// one is required.
	Variants []Variant
	// Seeds is the number of runs per variant (default 1). Per-run
	// seeds are derived deterministically from BaseSeed via rng.Split,
	// so run (variant, i) sees the same seed regardless of Workers.
	Seeds int
	// BaseSeed is the master seed of the sweep.
	BaseSeed uint64
	// Workers bounds the parallelism (0 means GOMAXPROCS). The
	// aggregates are byte-identical for any worker count.
	Workers int
	// KeepResults retains every run's full Result envelope (per-node
	// neighbor lists and all). Off by default: aggregation only needs
	// each run's Metrics, and large sweeps would otherwise hold
	// O(runs × n × degree) of detail until the sweep returns.
	KeepResults bool
}

// Run is one completed (or failed) simulation inside a sweep.
type Run struct {
	// Variant is the variant's resolved name.
	Variant string `json:"variant"`
	// Index is the seed index within the variant, in [0, Seeds).
	Index int `json:"index"`
	// Seed is the derived per-run seed.
	Seed uint64 `json:"seed"`
	// Completed reports whether the run's goal predicate held.
	Completed bool `json:"completed"`
	// Metrics are the run's numeric measurements (Result.Metrics);
	// nil when the run failed.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Result is the full envelope, retained only when
	// SweepSpec.KeepResults is set (and the run succeeded).
	Result *Result `json:"result,omitempty"`
	// Err is the run's error message, empty on success.
	Err string `json:"err,omitempty"`
}

// Aggregate summarizes one variant's runs.
type Aggregate struct {
	// Variant is the variant's resolved name.
	Variant string `json:"variant"`
	// Primitive is the primitive that ran.
	Primitive string `json:"primitive"`
	// Runs / Failures / Completed count the variant's runs, the runs
	// that errored, and the runs whose goal predicate held.
	Runs      int `json:"runs"`
	Failures  int `json:"failures"`
	Completed int `json:"completed"`
	// Metrics maps each Result metric (see Result.Metrics) to its
	// summary across the variant's successful runs.
	Metrics map[string]Summary `json:"metrics"`
}

// SweepResult is the outcome of one sweep.
type SweepResult struct {
	// Aggregates holds one entry per variant, in variant order.
	Aggregates []Aggregate `json:"aggregates"`
	// Runs holds every run in deterministic (variant, index) order.
	Runs []Run `json:"runs"`
}

// Sweep fans spec.Primitive out over spec.Seeds × spec.Variants on a
// worker pool of spec.Workers goroutines. Scenarios are built once per
// variant and shared read-only; per-run seeds are derived from
// BaseSeed with rng.Split keyed by (variant, index), so results — and
// therefore the aggregates — are byte-identical for any worker count.
//
// Cancellation: ctx is threaded into every primitive run (the engines
// poll it every 16 simulated slots); when ctx is cancelled, Sweep
// abandons unfinished work and returns ctx.Err().
//
// Individual run errors do not abort the sweep: they are recorded on
// the Run and counted in the variant's Failures.
func Sweep(ctx context.Context, spec SweepSpec) (*SweepResult, error) {
	if spec.Primitive == nil {
		return nil, fmt.Errorf("crn: sweep needs a primitive")
	}
	if len(spec.Variants) == 0 {
		return nil, fmt.Errorf("crn: sweep needs at least one variant")
	}
	seeds := spec.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Resolve scenarios up front so configuration errors surface before
	// any worker starts.
	scenarios := make([]*Scenario, len(spec.Variants))
	names := make([]string, len(spec.Variants))
	for v, variant := range spec.Variants {
		names[v] = variant.Name
		if names[v] == "" {
			names[v] = fmt.Sprintf("variant-%d", v)
		}
		switch {
		case variant.Scenario != nil && variant.Options != nil:
			return nil, fmt.Errorf("crn: variant %q sets both Scenario and Options", names[v])
		case variant.Scenario != nil:
			scenarios[v] = variant.Scenario
		case variant.Options != nil:
			s, err := New(variant.Options...)
			if err != nil {
				return nil, fmt.Errorf("crn: variant %q: %w", names[v], err)
			}
			scenarios[v] = s
		default:
			return nil, fmt.Errorf("crn: variant %q has neither Scenario nor Options", names[v])
		}
	}

	// Deterministic per-run seeds, independent of scheduling: Split
	// reads (not advances) the master state, keyed by (variant, index).
	master := rng.New(spec.BaseSeed)
	total := len(spec.Variants) * seeds
	runs := make([]Run, total)
	for v := range spec.Variants {
		for i := 0; i < seeds; i++ {
			job := v*seeds + i
			runs[job] = Run{
				Variant: names[v],
				Index:   i,
				Seed:    master.Split(uint64(v)<<32 | uint64(i)).Uint64(),
			}
		}
	}

	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				v := job / seeds
				res, err := spec.Primitive.Run(ctx, scenarios[v], runs[job].Seed)
				if err != nil {
					runs[job].Err = err.Error()
					continue
				}
				runs[job].Completed = res.Completed
				runs[job].Metrics = res.Metrics()
				if spec.KeepResults {
					runs[job].Result = res
				}
			}
		}()
	}
feed:
	for job := 0; job < total; job++ {
		select {
		case jobs <- job:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Aggregate sequentially in variant order — the deterministic part.
	aggs := make([]Aggregate, len(spec.Variants))
	for v := range spec.Variants {
		agg := Aggregate{
			Variant:   names[v],
			Primitive: spec.Primitive.Name(),
			Metrics:   make(map[string]Summary),
		}
		samples := make(map[string][]float64)
		for i := 0; i < seeds; i++ {
			run := runs[v*seeds+i]
			agg.Runs++
			if run.Err != "" {
				agg.Failures++
				continue
			}
			if run.Completed {
				agg.Completed++
			}
			for name, value := range run.Metrics {
				samples[name] = append(samples[name], value)
			}
		}
		keys := make([]string, 0, len(samples))
		for name := range samples {
			keys = append(keys, name)
		}
		sort.Strings(keys)
		for _, name := range keys {
			agg.Metrics[name] = stats.Summarize(samples[name])
		}
		aggs[v] = agg
	}
	return &SweepResult{Aggregates: aggs, Runs: runs}, nil
}
