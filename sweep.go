package crn

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"crn/internal/rng"
	"crn/internal/stats"
)

// Variant names one scenario configuration inside a sweep. Exactly one
// of Scenario (a prebuilt scenario, shared read-only by the workers)
// or Options (applied once when the sweep starts) must be set.
type Variant struct {
	// Name labels the variant in aggregates; empty defaults to
	// "variant-<index>".
	Name string
	// Scenario is a prebuilt scenario to run on.
	Scenario *Scenario
	// Options generate the scenario at sweep start when Scenario is nil.
	Options []ScenarioOption
}

// SweepSpec describes a sweep: one primitive fanned out over
// Seeds × len(Variants) runs.
type SweepSpec struct {
	// Primitive is the primitive every run executes.
	Primitive Primitive
	// Variants are the scenario configurations to sweep over; at least
	// one is required.
	Variants []Variant
	// Seeds is the number of runs per variant (default 1). Per-run
	// seeds are derived deterministically from BaseSeed via rng.Split,
	// so run (variant, i) sees the same seed regardless of Workers —
	// or of which shard of a ShardPlan executes it.
	Seeds int
	// BaseSeed is the master seed of the sweep.
	BaseSeed uint64
	// Workers bounds the parallelism (0 means GOMAXPROCS). The
	// aggregates are byte-identical for any worker count.
	Workers int
	// KeepResults retains every run's full Result envelope (per-node
	// neighbor lists and all). Off by default: aggregation only needs
	// each run's Metrics, and large sweeps would otherwise hold
	// O(runs × n × degree) of detail until the sweep returns.
	KeepResults bool
}

// resolvedSweep is a validated SweepSpec: variant names and scenarios
// resolved, the seed count defaulted, and the master rng fixed. It is
// the common ground under Sweep, PlanShards and RunShard — all three
// must agree on the job grid (job = variant*seeds + index) and the
// per-run seed derivation, or sharded execution would diverge from
// in-process execution.
type resolvedSweep struct {
	spec      SweepSpec
	seeds     int
	total     int
	names     []string
	scenarios []*Scenario
	master    *rng.Source
}

func resolveSweep(spec SweepSpec) (*resolvedSweep, error) {
	if spec.Primitive == nil {
		return nil, fmt.Errorf("crn: sweep needs a primitive")
	}
	if len(spec.Variants) == 0 {
		return nil, fmt.Errorf("crn: sweep needs at least one variant")
	}
	rs := &resolvedSweep{
		spec:      spec,
		seeds:     spec.Seeds,
		names:     make([]string, len(spec.Variants)),
		scenarios: make([]*Scenario, len(spec.Variants)),
		master:    rng.New(spec.BaseSeed),
	}
	if rs.seeds <= 0 {
		rs.seeds = 1
	}
	rs.total = len(spec.Variants) * rs.seeds

	// Resolve scenarios up front so configuration errors surface before
	// any worker starts.
	for v, variant := range spec.Variants {
		rs.names[v] = variant.Name
		if rs.names[v] == "" {
			rs.names[v] = fmt.Sprintf("variant-%d", v)
		}
		switch {
		case variant.Scenario != nil && variant.Options != nil:
			return nil, fmt.Errorf("crn: variant %q sets both Scenario and Options", rs.names[v])
		case variant.Scenario != nil:
			rs.scenarios[v] = variant.Scenario
		case variant.Options != nil:
			s, err := New(variant.Options...)
			if err != nil {
				return nil, fmt.Errorf("crn: variant %q: %w", rs.names[v], err)
			}
			rs.scenarios[v] = s
		default:
			return nil, fmt.Errorf("crn: variant %q has neither Scenario nor Options", rs.names[v])
		}
	}
	return rs, nil
}

// deriveSeed is the one per-run seed derivation: Split reads (does
// not advance) the master state, keyed by (variant, index), so the
// seed depends only on BaseSeed and the job's grid position — never
// on scheduling, worker count or shard boundaries. MergeShards
// re-derives seeds through this same helper to validate artifacts;
// any change here is a breaking change to recorded shard artifacts.
func deriveSeed(master *rng.Source, v, i int) uint64 {
	return master.Split(uint64(v)<<32 | uint64(i)).Uint64()
}

// runFor returns the blank Run for one job: identity and derived seed
// set, outcome not yet filled in.
func (rs *resolvedSweep) runFor(job int) Run {
	v, i := job/rs.seeds, job%rs.seeds
	return Run{
		Variant: rs.names[v],
		Index:   i,
		Seed:    deriveSeed(rs.master, v, i),
	}
}

// executeJobs runs the contiguous job range [lo, hi) on a worker
// pool, filling runs[k] with the outcome of job lo+k (runs must come
// from runFor). Individual run errors are recorded on the Run; only
// cancellation aborts the pool.
func (rs *resolvedSweep) executeJobs(ctx context.Context, lo, hi int, runs []Run) error {
	if hi <= lo {
		return ctx.Err()
	}
	workers := rs.spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > hi-lo {
		workers = hi - lo
	}

	feed := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for k := range feed {
				v := (lo + k) / rs.seeds
				run := &runs[k]
				res, err := rs.spec.Primitive.Run(ctx, rs.scenarios[v], run.Seed)
				if err != nil {
					run.Err = err.Error()
					continue
				}
				run.Completed = res.Completed
				run.Metrics = res.Metrics()
				if rs.spec.KeepResults {
					run.Result = res
				}
			}
		}()
	}
loop:
	for k := 0; k < hi-lo; k++ {
		select {
		case feed <- k:
		case <-ctx.Done():
			break loop
		}
	}
	close(feed)
	for w := 0; w < workers; w++ {
		<-done
	}
	return ctx.Err()
}

// aggregateRuns is the single aggregation path shared by in-process
// sweeps (Sweep) and shard merges (MergeShards): runs must be the
// complete job grid in (variant, index) order. Each metric funnels
// through a stats.Accumulator, whose Summary is a pure function of the
// sample multiset — which is why merged shards reproduce the
// single-process aggregates byte for byte.
func aggregateRuns(primitive string, names []string, seeds int, runs []Run) []Aggregate {
	aggs := make([]Aggregate, len(names))
	for v := range names {
		agg := Aggregate{
			Variant:   names[v],
			Primitive: primitive,
			Metrics:   make(map[string]Summary),
		}
		accs := make(map[string]*stats.Accumulator)
		for i := 0; i < seeds; i++ {
			run := runs[v*seeds+i]
			agg.Runs++
			if run.Err != "" {
				agg.Failures++
				continue
			}
			if run.Completed {
				agg.Completed++
			}
			for name, value := range run.Metrics {
				acc := accs[name]
				if acc == nil {
					acc = &stats.Accumulator{}
					accs[name] = acc
				}
				acc.Add(value)
			}
		}
		keys := make([]string, 0, len(accs))
		for name := range accs {
			keys = append(keys, name)
		}
		sort.Strings(keys)
		for _, name := range keys {
			agg.Metrics[name] = accs[name].Summary()
		}
		aggs[v] = agg
	}
	return aggs
}

// Sweep fans spec.Primitive out over spec.Seeds × spec.Variants on a
// worker pool of spec.Workers goroutines. Scenarios are built once per
// variant and shared read-only; per-run seeds are derived from
// BaseSeed with rng.Split keyed by (variant, index), so results — and
// therefore the aggregates — are byte-identical for any worker count.
// (They are also byte-identical to running the same spec through a
// ShardPlan of any width and merging: see PlanShards / MergeShards.)
//
// Cancellation: ctx is threaded into every primitive run (the engines
// poll it every 16 simulated slots); when ctx is cancelled, Sweep
// abandons unfinished work and returns ctx.Err().
//
// Individual run errors do not abort the sweep: they are recorded on
// the Run and counted in the variant's Failures.
func Sweep(ctx context.Context, spec SweepSpec) (*SweepResult, error) {
	rs, err := resolveSweep(spec)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	runs := make([]Run, rs.total)
	for job := range runs {
		runs[job] = rs.runFor(job)
	}
	if err := rs.executeJobs(ctx, 0, rs.total, runs); err != nil {
		return nil, err
	}
	return &SweepResult{
		Aggregates: aggregateRuns(spec.Primitive.Name(), rs.names, rs.seeds, runs),
		Runs:       runs,
	}, nil
}
