package crn

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"crn/internal/rng"
	"crn/internal/stats"
)

// Variant names one scenario configuration inside a sweep. Exactly one
// of Scenario (a prebuilt scenario, shared read-only by the workers)
// or Options (applied once when the sweep starts) must be set.
type Variant struct {
	// Name labels the variant in aggregates; empty defaults to
	// "variant-<index>".
	Name string
	// Scenario is a prebuilt scenario to run on.
	Scenario *Scenario
	// Options generate the scenario at sweep start when Scenario is nil.
	Options []ScenarioOption
}

// SweepSpec describes a sweep: one primitive fanned out over
// Seeds × len(Variants) runs.
type SweepSpec struct {
	// Primitive is the primitive every run executes.
	Primitive Primitive
	// Variants are the scenario configurations to sweep over; at least
	// one is required.
	Variants []Variant
	// Seeds is the number of runs per variant (default 1). Per-run
	// seeds are derived deterministically from BaseSeed via rng.Split,
	// so run (variant, i) sees the same seed regardless of Workers —
	// or of which shard of a ShardPlan executes it.
	Seeds int
	// BaseSeed is the master seed of the sweep.
	BaseSeed uint64
	// Workers bounds the parallelism (0 means GOMAXPROCS). The
	// aggregates are byte-identical for any worker count.
	Workers int
	// KeepResults retains every run's full Result envelope (per-node
	// neighbor lists and all). Off by default: aggregation only needs
	// each run's Metrics, and large sweeps would otherwise hold
	// O(runs × n × degree) of detail until the sweep returns.
	KeepResults bool
	// Batch, when > 1, feeds up to Batch same-variant runs through one
	// fused engine pass (radio.BatchEngine) per worker task, amortizing
	// graph, assignment and engine scratch across the batch. It only
	// applies when the primitive supports batching (the discovery
	// primitives, on static and dynamic topologies alike) and is a pure
	// execution strategy: results and aggregates are byte-identical to
	// Batch == 0 at any worker count, which the batch engine's replica
	// isolation guarantees and the test suite enforces. Whether batching
	// was actually used is reported in SweepResult.Batching.
	Batch int
}

// batchRunner is implemented by primitives that can execute several
// same-scenario runs through one fused engine pass. The contract is
// strict: RunBatch(ctx, s, seeds)[i] must be byte-identical to Run(ctx,
// s, seeds[i]) for every i — batching is an execution strategy, never a
// model change.
type batchRunner interface {
	RunBatch(ctx context.Context, s *Scenario, seeds []uint64) ([]*Result, error)
}

// resolvedSweep is a validated SweepSpec: variant names and scenarios
// resolved, the seed count defaulted, and the master rng fixed. It is
// the common ground under Sweep, PlanShards and RunShard — all three
// must agree on the job grid (job = variant*seeds + index) and the
// per-run seed derivation, or sharded execution would diverge from
// in-process execution.
type resolvedSweep struct {
	spec      SweepSpec
	seeds     int
	total     int
	names     []string
	scenarios []*Scenario
	master    *rng.Source
}

func resolveSweep(spec SweepSpec) (*resolvedSweep, error) {
	if spec.Primitive == nil {
		return nil, fmt.Errorf("crn: sweep needs a primitive")
	}
	if len(spec.Variants) == 0 {
		return nil, fmt.Errorf("crn: sweep needs at least one variant")
	}
	rs := &resolvedSweep{
		spec:      spec,
		seeds:     spec.Seeds,
		names:     make([]string, len(spec.Variants)),
		scenarios: make([]*Scenario, len(spec.Variants)),
		master:    rng.New(spec.BaseSeed),
	}
	if rs.seeds <= 0 {
		rs.seeds = 1
	}
	rs.total = len(spec.Variants) * rs.seeds

	// Resolve scenarios up front so configuration errors surface before
	// any worker starts.
	for v, variant := range spec.Variants {
		rs.names[v] = variant.Name
		if rs.names[v] == "" {
			rs.names[v] = fmt.Sprintf("variant-%d", v)
		}
		switch {
		case variant.Scenario != nil && variant.Options != nil:
			return nil, fmt.Errorf("crn: variant %q sets both Scenario and Options", rs.names[v])
		case variant.Scenario != nil:
			rs.scenarios[v] = variant.Scenario
		case variant.Options != nil:
			s, err := New(variant.Options...)
			if err != nil {
				return nil, fmt.Errorf("crn: variant %q: %w", rs.names[v], err)
			}
			rs.scenarios[v] = s
		default:
			return nil, fmt.Errorf("crn: variant %q has neither Scenario nor Options", rs.names[v])
		}
	}
	return rs, nil
}

// deriveSeed is the one per-run seed derivation: Split reads (does
// not advance) the master state, keyed by (variant, index), so the
// seed depends only on BaseSeed and the job's grid position — never
// on scheduling, worker count or shard boundaries. MergeShards
// re-derives seeds through this same helper to validate artifacts;
// any change here is a breaking change to recorded shard artifacts.
func deriveSeed(master *rng.Source, v, i int) uint64 {
	return master.Split(uint64(v)<<32 | uint64(i)).Uint64()
}

// runFor returns the blank Run for one job: identity and derived seed
// set, outcome not yet filled in.
func (rs *resolvedSweep) runFor(job int) Run {
	v, i := job/rs.seeds, job%rs.seeds
	return Run{
		Variant: rs.names[v],
		Index:   i,
		Seed:    deriveSeed(rs.master, v, i),
	}
}

// jobChunk is a contiguous range of same-variant job offsets handed to
// one worker task: [k0, k1) within the executeJobs window.
type jobChunk struct{ k0, k1 int }

// chunkJobs splits the job window [lo, hi) into worker tasks. Without
// batching every job is its own chunk; with batching, runs of up to
// spec.Batch contiguous jobs of the same variant are grouped so one
// fused engine pass covers them. Chunks never span variants (a batch
// shares one scenario).
func (rs *resolvedSweep) chunkJobs(lo, hi, batch int) []jobChunk {
	if batch < 1 {
		batch = 1
	}
	chunks := make([]jobChunk, 0, (hi-lo+batch-1)/batch)
	for k := 0; k < hi-lo; {
		v := (lo + k) / rs.seeds
		end := k + 1
		for end < hi-lo && end-k < batch && (lo+end)/rs.seeds == v {
			end++
		}
		chunks = append(chunks, jobChunk{k0: k, k1: end})
		k = end
	}
	return chunks
}

// batchingInfo reports how the job window [lo, hi) executes under the
// spec's Batch setting. It is a pure function of the resolved spec and
// the deterministic chunk layout (chunkJobs), so it needs no feedback
// from the worker pool — the report is exact, not sampled.
func (rs *resolvedSweep) batchingInfo(lo, hi int) *BatchingInfo {
	info := &BatchingInfo{Requested: rs.spec.Batch}
	_, info.Supported = rs.spec.Primitive.(batchRunner)
	batch := rs.spec.Batch
	if !info.Supported || batch <= 1 {
		info.SequentialRuns = hi - lo
		return info
	}
	for _, c := range rs.chunkJobs(lo, hi, batch) {
		if n := c.k1 - c.k0; n > 1 {
			info.BatchedRuns += n
		} else {
			info.SequentialRuns++
		}
	}
	return info
}

// recordResult fills one Run from its primitive Result.
func (rs *resolvedSweep) recordResult(run *Run, res *Result) {
	run.Completed = res.Completed
	run.Metrics = res.Metrics()
	if rs.spec.KeepResults {
		run.Result = res
	}
}

// executeJobs runs the contiguous job range [lo, hi) on a worker
// pool, filling runs[k] with the outcome of job lo+k (runs must come
// from runFor). Individual run errors are recorded on the Run; only
// cancellation aborts the pool. When spec.Batch > 1 and the primitive
// supports batching, workers execute fused multi-run chunks instead of
// single runs — with byte-identical results (see batchRunner).
func (rs *resolvedSweep) executeJobs(ctx context.Context, lo, hi int, runs []Run) error {
	if hi <= lo {
		return ctx.Err()
	}
	var br batchRunner
	batch := rs.spec.Batch
	if batch > 1 {
		br, _ = rs.spec.Primitive.(batchRunner)
	}
	if br == nil {
		batch = 1
	}
	chunks := rs.chunkJobs(lo, hi, batch)

	workers := rs.spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(chunks) {
		workers = len(chunks)
	}

	feed := make(chan jobChunk)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for c := range feed {
				v := (lo + c.k0) / rs.seeds
				if c.k1-c.k0 == 1 {
					run := &runs[c.k0]
					res, err := rs.spec.Primitive.Run(ctx, rs.scenarios[v], run.Seed)
					if err != nil {
						run.Err = err.Error()
						continue
					}
					rs.recordResult(run, res)
					continue
				}
				seeds := make([]uint64, c.k1-c.k0)
				for i := range seeds {
					seeds[i] = runs[c.k0+i].Seed
				}
				results, err := br.RunBatch(ctx, rs.scenarios[v], seeds)
				if err != nil {
					// A batch fails as a unit: construction errors are
					// seed-independent, and cancellation aborts the pool
					// anyway.
					for i := c.k0; i < c.k1; i++ {
						runs[i].Err = err.Error()
					}
					continue
				}
				for i, res := range results {
					rs.recordResult(&runs[c.k0+i], res)
				}
			}
		}()
	}
loop:
	for _, c := range chunks {
		select {
		case feed <- c:
		case <-ctx.Done():
			break loop
		}
	}
	close(feed)
	for w := 0; w < workers; w++ {
		<-done
	}
	return ctx.Err()
}

// aggregateRuns is the single aggregation path shared by in-process
// sweeps (Sweep) and shard merges (MergeShards): runs must be the
// complete job grid in (variant, index) order. Each metric funnels
// through a stats.Accumulator, whose Summary is a pure function of the
// sample multiset — which is why merged shards reproduce the
// single-process aggregates byte for byte.
func aggregateRuns(primitive string, names []string, seeds int, runs []Run) []Aggregate {
	aggs := make([]Aggregate, len(names))
	for v := range names {
		agg := Aggregate{
			Variant:   names[v],
			Primitive: primitive,
			Metrics:   make(map[string]Summary),
		}
		accs := make(map[string]*stats.Accumulator)
		for i := 0; i < seeds; i++ {
			run := runs[v*seeds+i]
			agg.Runs++
			if run.Err != "" {
				agg.Failures++
				continue
			}
			if run.Completed {
				agg.Completed++
			}
			for name, value := range run.Metrics {
				acc := accs[name]
				if acc == nil {
					acc = &stats.Accumulator{}
					accs[name] = acc
				}
				acc.Add(value)
			}
		}
		keys := make([]string, 0, len(accs))
		for name := range accs {
			keys = append(keys, name)
		}
		sort.Strings(keys)
		for _, name := range keys {
			agg.Metrics[name] = accs[name].Summary()
		}
		aggs[v] = agg
	}
	return aggs
}

// Sweep fans spec.Primitive out over spec.Seeds × spec.Variants on a
// worker pool of spec.Workers goroutines. Scenarios are built once per
// variant and shared read-only; per-run seeds are derived from
// BaseSeed with rng.Split keyed by (variant, index), so results — and
// therefore the aggregates — are byte-identical for any worker count.
// (They are also byte-identical to running the same spec through a
// ShardPlan of any width and merging: see PlanShards / MergeShards.)
//
// Cancellation: ctx is threaded into every primitive run (the engines
// poll it every 16 simulated slots); when ctx is cancelled, Sweep
// abandons unfinished work and returns ctx.Err().
//
// Individual run errors do not abort the sweep: they are recorded on
// the Run and counted in the variant's Failures.
func Sweep(ctx context.Context, spec SweepSpec) (*SweepResult, error) {
	rs, err := resolveSweep(spec)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	runs := make([]Run, rs.total)
	for job := range runs {
		runs[job] = rs.runFor(job)
	}
	if err := rs.executeJobs(ctx, 0, rs.total, runs); err != nil {
		return nil, err
	}
	return &SweepResult{
		Aggregates: aggregateRuns(spec.Primitive.Name(), rs.names, rs.seeds, runs),
		Runs:       runs,
		Batching:   rs.batchingInfo(0, rs.total),
	}, nil
}
