package crn

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func presetOptions(t *testing.T, name string, base ...ScenarioOption) []ScenarioOption {
	t.Helper()
	p, err := PresetByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return append(base, p.Options...)
}

func TestPresetByName(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := PresetByName(name)
		if err != nil {
			t.Fatalf("PresetByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("PresetByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := PresetByName("URBAN-BUSY"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestPresetsBuildScenarios(t *testing.T) {
	base := []ScenarioOption{
		WithTopology(GNP), WithNodes(10), WithChannels(4, 2, 0), WithSeed(3),
	}
	for _, p := range Presets() {
		if _, err := New(append(append([]ScenarioOption{}, base...), p.Options...)...); err != nil {
			t.Errorf("preset %q: %v", p.Name, err)
		}
	}
}

// TestPresetSpectrumShowsInResults: the non-quiet presets actually jam
// — their runs account jammed listener-slots — while quiet stays clean.
func TestPresetSpectrumShowsInResults(t *testing.T) {
	base := []ScenarioOption{WithTopology(GNP), WithNodes(10), WithChannels(4, 2, 0), WithSeed(3)}
	for _, name := range []string{PresetQuiet, PresetUrbanBusy, PresetBursty, PresetAdversarial} {
		s, err := New(presetOptions(t, name, base...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Discovery(CSeek).Run(context.Background(), s, 11)
		if err != nil {
			t.Fatal(err)
		}
		if res.Spectrum == nil {
			t.Fatalf("preset %q: no spectrum accounting", name)
		}
		if name == PresetQuiet {
			if res.Spectrum.JammedListens != 0 {
				t.Errorf("quiet preset jammed %d listens", res.Spectrum.JammedListens)
			}
			continue
		}
		if res.Spectrum.JammedListens == 0 {
			t.Errorf("preset %q jammed 0 listens — model not installed?", name)
		}
	}
}

// TestSweepPresetAggregatesByteIdentical is the acceptance check: a
// Sweep over the adversarial-t and urban-busy presets produces
// byte-identical results (full runs and aggregates) at 1 and 8
// workers. With a stateful adversary this only holds because every run
// gets its own jammer instance (Scenario.runNetwork).
func TestSweepPresetAggregatesByteIdentical(t *testing.T) {
	base := []ScenarioOption{WithTopology(GNP), WithNodes(10), WithChannels(4, 2, 0), WithSeed(5)}
	for _, name := range []string{PresetAdversarial, PresetUrbanBusy} {
		s, err := New(presetOptions(t, name, base...)...)
		if err != nil {
			t.Fatal(err)
		}
		sweep := func(workers int) []byte {
			res, err := Sweep(context.Background(), SweepSpec{
				Primitive:   Discovery(CSeek),
				Variants:    []Variant{{Name: name, Scenario: s}},
				Seeds:       6,
				BaseSeed:    77,
				Workers:     workers,
				KeepResults: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Aggregates[0].Failures > 0 {
				t.Fatalf("preset %q: %d sweep runs failed", name, res.Aggregates[0].Failures)
			}
			b, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		if w1, w8 := sweep(1), sweep(8); !bytes.Equal(w1, w8) {
			t.Errorf("preset %q: sweep results differ between 1 and 8 workers", name)
		}
	}
}

// TestSweepWorkerEquivalenceAcrossPrimitives locks worker-count
// determinism down for every primitive × spectrum model combination:
// runs (including stateful-adversary scenarios) must be byte-identical
// at 1, 2, 4 and 8 workers.
func TestSweepWorkerEquivalenceAcrossPrimitives(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-matrix determinism check")
	}
	base := []ScenarioOption{WithTopology(GNP), WithNodes(9), WithChannels(4, 2, 0), WithSeed(8)}
	prims := []Primitive{
		Discovery(CSeek),
		KDiscovery(2),
		GlobalBroadcast(0, "m"),
		Flooding(0, "m"),
	}
	for _, name := range []string{PresetUrbanBusy, PresetBursty, PresetAdversarial} {
		s, err := New(presetOptions(t, name, base...)...)
		if err != nil {
			t.Fatal(err)
		}
		for _, prim := range prims {
			want := []byte(nil)
			for _, workers := range []int{1, 2, 4, 8} {
				res, err := Sweep(context.Background(), SweepSpec{
					Primitive:   prim,
					Variants:    []Variant{{Name: name, Scenario: s}},
					Seeds:       4,
					BaseSeed:    13,
					Workers:     workers,
					KeepResults: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = b
					continue
				}
				if !bytes.Equal(want, b) {
					t.Errorf("%s/%s: workers=%d diverged from workers=1", name, prim.Name(), workers)
				}
			}
		}
	}
}

// TestOptionsStackSpectrumModels: primary traffic plus an adversary
// compose — the combined scenario jams at least as much as either
// alone.
func TestOptionsStackSpectrumModels(t *testing.T) {
	base := []ScenarioOption{WithTopology(GNP), WithNodes(10), WithChannels(4, 2, 0), WithSeed(3)}
	jammedListens := func(opts ...ScenarioOption) int64 {
		s, err := New(append(append([]ScenarioOption{}, base...), opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Discovery(CSeek).Run(context.Background(), s, 21)
		if err != nil {
			t.Fatal(err)
		}
		return res.Spectrum.JammedListens
	}
	markovOnly := jammedListens(WithMarkovPrimaryUsers(0.05, 0.15, 0, 7))
	stacked := jammedListens(WithMarkovPrimaryUsers(0.05, 0.15, 0, 7), WithAdversary(1))
	if markovOnly == 0 {
		t.Fatal("markov model jammed nothing")
	}
	if stacked <= markovOnly {
		t.Errorf("stacked models jammed %d listens, markov alone %d — adversary not stacking", stacked, markovOnly)
	}
	// WithJammer(nil) clears everything installed so far — the escape
	// hatch back to clear spectrum on top of a preset.
	if cleared := jammedListens(WithMarkovPrimaryUsers(0.05, 0.15, 0, 7), WithAdversary(1), WithJammer(nil)); cleared != 0 {
		t.Errorf("WithJammer(nil) left %d jammed listens, want 0", cleared)
	}
}
