package crn

import (
	"testing"
)

func TestNewScenarioValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  ScenarioConfig
	}{
		{name: "too few nodes", cfg: ScenarioConfig{N: 1, C: 3, K: 1}},
		{name: "no channels", cfg: ScenarioConfig{N: 4, C: 0, K: 0}},
		{name: "k over c", cfg: ScenarioConfig{N: 4, C: 2, K: 3}},
		{name: "kmax under k", cfg: ScenarioConfig{N: 4, C: 4, K: 3, KMax: 2}},
		{name: "bad topology", cfg: ScenarioConfig{Topology: "donut", N: 4, C: 2, K: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewScenario(tt.cfg); err == nil {
				t.Errorf("NewScenario(%+v) succeeded, want error", tt.cfg)
			}
		})
	}
}

func TestNewScenarioTopologies(t *testing.T) {
	for _, topo := range []Topology{GNP, Star, Path, Grid, Chain, Tree, UnitDisk} {
		t.Run(string(topo), func(t *testing.T) {
			s, err := NewScenario(ScenarioConfig{Topology: topo, N: 12, C: 4, K: 2, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if s.N() < 2 {
				t.Errorf("N = %d", s.N())
			}
			if s.K() < 1 {
				t.Errorf("K = %d", s.K())
			}
			if s.Diameter() < 1 {
				t.Errorf("D = %d", s.Diameter())
			}
			if s.String() == "" {
				t.Error("empty String()")
			}
		})
	}
}

func TestScenarioHeterogeneous(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{Topology: Path, N: 8, C: 8, K: 2, KMax: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.KMax() <= s.K() {
		t.Errorf("kmax = %d not above k = %d in heterogeneous scenario", s.KMax(), s.K())
	}
}

func TestDiscoverCSeek(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	s, err := NewScenario(ScenarioConfig{Topology: GNP, N: 14, C: 5, K: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Discover(CSeek, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDiscovered() {
		t.Errorf("discovered %d/%d pairs", res.PairsDiscovered, res.PairsTotal)
	}
	if res.CompletedAtSlot < 0 || res.CompletedAtSlot > res.ScheduleSlots {
		t.Errorf("CompletedAtSlot = %d outside [0,%d]", res.CompletedAtSlot, res.ScheduleSlots)
	}
	if res.Algorithm != "cseek" {
		t.Errorf("Algorithm = %q", res.Algorithm)
	}
}

func TestDiscoverDefaultsToCSeek(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{Topology: Path, N: 6, C: 3, K: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Discover("", 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "cseek" {
		t.Errorf("Algorithm = %q, want cseek", res.Algorithm)
	}
}

func TestDiscoverUnknownAlgorithm(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{Topology: Path, N: 6, C: 3, K: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Discover("magic", 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestDiscoverBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	s, err := NewScenario(ScenarioConfig{Topology: Star, N: 8, C: 4, K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{Naive, Uniform} {
		res, err := s.Discover(algo, 11)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllDiscovered() {
			t.Errorf("%s: discovered %d/%d", algo, res.PairsDiscovered, res.PairsTotal)
		}
	}
}

func TestDiscoverK(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	s, err := NewScenario(ScenarioConfig{Topology: GNP, N: 14, C: 10, K: 2, KMax: 6, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.DiscoverK(s.KMax(), 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.PairsTotal == 0 {
		t.Fatal("no good pairs in heterogeneous scenario")
	}
	if !res.AllDiscovered() {
		t.Errorf("found %d/%d good pairs", res.PairsDiscovered, res.PairsTotal)
	}
	if _, err := s.DiscoverK(1, 13); err == nil {
		t.Error("k̂ below k accepted")
	}
	if _, err := s.DiscoverK(s.C()+1, 13); err == nil {
		t.Error("k̂ above kmax accepted")
	}
}

func TestBroadcastAndFlood(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	s, err := NewScenario(ScenarioConfig{Topology: Chain, N: 16, C: 4, K: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Broadcast(0, "hello", 17)
	if err != nil {
		t.Fatal(err)
	}
	if !b.AllInformed {
		t.Error("CGCAST left nodes uninformed")
	}
	if !b.ColoringValid {
		t.Error("coloring invalid")
	}
	if b.TotalSlots != b.SetupSlots+b.DissemScheduleSlots {
		t.Error("slot accounting inconsistent")
	}

	f, err := s.Flood(0, "hello", 19)
	if err != nil {
		t.Fatal(err)
	}
	if !f.AllInformed {
		t.Error("flooding left nodes uninformed")
	}
}

func TestBroadcastSourceValidation(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{Topology: Path, N: 6, C: 3, K: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Broadcast(99, "x", 1); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := s.Flood(-1, "x", 1); err == nil {
		t.Error("negative source accepted")
	}
}

func TestCustomScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	// A triangle where each edge has its own shared channel plus one
	// common channel.
	cfg := CustomConfig{
		N:        3,
		Edges:    [][2]int{{0, 1}, {1, 2}, {0, 2}},
		Universe: 4,
		Channels: [][]int{
			{0, 1, 3},
			{0, 1, 2},
			{0, 2, 3},
		},
		Seed: 13,
	}
	s, err := NewCustomScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 2 || s.KMax() != 2 {
		t.Errorf("overlap = [%d,%d], want [2,2]", s.K(), s.KMax())
	}
	res, err := s.Discover(CSeek, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDiscovered() {
		t.Errorf("discovered %d/%d", res.PairsDiscovered, res.PairsTotal)
	}
}

func TestCustomScenarioValidation(t *testing.T) {
	base := CustomConfig{
		N:        3,
		Edges:    [][2]int{{0, 1}, {1, 2}},
		Universe: 3,
		Channels: [][]int{{0, 1}, {0, 1}, {0, 1}},
	}
	t.Run("disconnected", func(t *testing.T) {
		cfg := base
		cfg.Edges = [][2]int{{0, 1}}
		if _, err := NewCustomScenario(cfg); err == nil {
			t.Error("disconnected topology accepted")
		}
	})
	t.Run("no shared channel", func(t *testing.T) {
		cfg := base
		cfg.Channels = [][]int{{0}, {1}, {2}}
		if _, err := NewCustomScenario(cfg); err == nil {
			t.Error("channel-disjoint neighbors accepted")
		}
	})
	t.Run("uneven channel counts", func(t *testing.T) {
		cfg := base
		cfg.Channels = [][]int{{0, 1}, {0}, {0, 1}}
		if _, err := NewCustomScenario(cfg); err == nil {
			t.Error("uneven channel counts accepted")
		}
	})
	t.Run("bad edge", func(t *testing.T) {
		cfg := base
		cfg.Edges = [][2]int{{0, 1}, {1, 5}}
		if _, err := NewCustomScenario(cfg); err == nil {
			t.Error("out-of-range edge accepted")
		}
	})
}

func TestSharedChannelCountAndEdges(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{Topology: Path, N: 4, C: 3, K: 2, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	edges := s.Edges()
	if len(edges) != 3 {
		t.Fatalf("Edges() = %v", edges)
	}
	for _, e := range edges {
		if got := s.SharedChannelCount(e[0], e[1]); got != 2 {
			t.Errorf("SharedChannelCount(%d,%d) = %d, want 2", e[0], e[1], got)
		}
	}
}
