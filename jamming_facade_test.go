package crn

import "testing"

// totalJammer occupies every channel in every slot.
type totalJammer struct{}

func (totalJammer) Jammed(int64, int32) bool { return true }

func TestSetJammerBlocksDiscovery(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{Topology: Path, N: 6, C: 3, K: 2, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	s.SetJammer(totalJammer{})
	res, err := s.Discover(CSeek, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.PairsDiscovered != 0 {
		t.Errorf("discovered %d pairs under total jamming, want 0", res.PairsDiscovered)
	}
	// Clearing the jammer restores discovery.
	s.SetJammer(nil)
	res, err = s.Discover(CSeek, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDiscovered() {
		t.Errorf("discovered %d/%d pairs on clear spectrum", res.PairsDiscovered, res.PairsTotal)
	}
}

func TestSetPeriodicPrimaryUsers(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	s, err := NewScenario(ScenarioConfig{Topology: GNP, N: 12, C: 5, K: 2, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetPeriodicPrimaryUsers(40, 12); err != nil {
		t.Fatal(err)
	}
	res, err := s.Discover(CSeek, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 30% duty with sub-step bursts: discovery should still complete
	// (E13's robustness finding).
	if !res.AllDiscovered() {
		t.Errorf("discovered %d/%d under 30%% duty", res.PairsDiscovered, res.PairsTotal)
	}
	// onSlots = 0 clears.
	if err := s.SetPeriodicPrimaryUsers(40, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetPeriodicPrimaryUsers(0, 5); err == nil {
		t.Error("zero period accepted")
	}
}

func TestSetMarkovPrimaryUsers(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{Topology: Path, N: 6, C: 3, K: 2, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetMarkovPrimaryUsers(0.01, 0.2, 0, 9); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMarkovPrimaryUsers(2.0, 0.2, 100, 9); err == nil {
		t.Error("pBusy > 1 accepted")
	}
	if s.Universe() < s.C() {
		t.Errorf("Universe() = %d below c = %d", s.Universe(), s.C())
	}
}
